package semantics

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
)

const (
	pi1Src = "T(X) :- E(Y,X), !T(Y)."
	tcSrc  = `
S(X,Y) :- E(X,Y).
S(X,Y) :- E(X,Z), S(Z,Y).
`
	// distanceSrc is the paper's Proposition 2 program with carrier S3.
	distanceSrc = `
S1(X,Y) :- E(X,Y).
S1(X,Y) :- E(X,Z), S1(Z,Y).
S2(Xs,Ys) :- E(Xs,Ys).
S2(Xs,Ys) :- E(Xs,Zs), S2(Zs,Ys).
S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).
S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).
`
)

func pathDB(n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 1; i <= n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 1; i < n; i++ {
		db.AddFact("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

func randomEdgeDB(rng *rand.Rand, n int, p float64) *relation.Database {
	db := relation.NewDatabase()
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
	}
	return db
}

// bfsDistances computes dist(u,v) = length of the shortest directed
// path with at least one edge, the distance notion of Proposition 2.
// Missing entries mean no path.
func bfsDistances(db *relation.Database) map[[2]int]int {
	n := db.Universe().Size()
	adj := make([][]int, n)
	if e := db.Relation("E"); e != nil {
		e.Each(func(t relation.Tuple) bool {
			adj[t[0]] = append(adj[t[0]], t[1])
			return true
		})
	}
	dist := make(map[[2]int]int)
	for src := 0; src < n; src++ {
		// BFS from each out-neighbour, offset by one edge.
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		queue := []int{}
		for _, z := range adj[src] {
			if d[z] < 0 {
				d[z] = 1
				queue = append(queue, z)
			}
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if d[w] < 0 {
					d[w] = d[u] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if d[v] > 0 {
				dist[[2]int{src, v}] = d[v]
			}
		}
	}
	return dist
}

func TestInflationaryPi1OneExtraRound(t *testing.T) {
	// Paper §4: for π₁, Θ^∞ = Θ¹ = {x : ∃y E(y,x)} on any graph.
	db := pathDB(6)
	in := engine.MustNew(parser.MustProgram(pi1Src), db)
	res := Inflationary(in)
	if res.State["T"].Len() != 5 {
		t.Errorf("Θ^∞ T len = %d, want 5", res.State["T"].Len())
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (Θ¹ then a no-op stage)", res.Stats.Rounds)
	}
}

func TestInflationaryToggleIsFullUniverse(t *testing.T) {
	// Paper §4: for T(z) ← ¬T(w), Θ^∞ = Θ¹ = A.
	db := relation.NewDatabase()
	db.AddConstant("a")
	db.AddConstant("b")
	in := engine.MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	res := Inflationary(in)
	if res.State["T"].Len() != 2 {
		t.Errorf("Θ^∞ = %v, want full universe", res.State["T"].Format(db.Universe()))
	}
}

func TestInflationaryEqualsLFPOnPositive(t *testing.T) {
	// Paper §4: on DATALOG programs the inflationary semantics
	// coincides with the least fixpoint.
	db := pathDB(8)
	in := engine.MustNew(parser.MustProgram(tcSrc), db)
	inf := Inflationary(in)
	lfp, err := LeastFixpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	if !inf.State.Equal(lfp.State) {
		t.Error("inflationary and least fixpoint differ on a positive program")
	}
	// The result must be a true Θ-fixpoint.
	if !in.IsFixpoint(lfp.State) {
		t.Error("LFP result is not a fixpoint of Θ")
	}
	// TC of a path of 8 vertices has 7+6+…+1 = 28 pairs.
	if lfp.State["S"].Len() != 28 {
		t.Errorf("TC size = %d, want 28", lfp.State["S"].Len())
	}
}

func TestLeastFixpointRejectsGeneral(t *testing.T) {
	db := pathDB(3)
	in := engine.MustNew(parser.MustProgram(pi1Src), db)
	if _, err := LeastFixpoint(in); err == nil {
		t.Error("LFP accepted a general DATALOG¬ program")
	}
}

func TestInflationaryNotAFixpointSometimes(t *testing.T) {
	// Paper §4: Θ^∞ need not be a fixpoint of Θ.  For π₁ on L₃,
	// Θ^∞ = {2,3} but Θ({2,3}) = {2}: vertices 2,3 both have incoming
	// edges, yet 3's predecessor 2 is in T.
	db := pathDB(3)
	in := engine.MustNew(parser.MustProgram(pi1Src), db)
	res := Inflationary(in)
	if res.State["T"].Len() != 2 {
		t.Fatalf("Θ^∞ T = %v", res.State["T"].Format(db.Universe()))
	}
	if in.IsFixpoint(res.State) {
		t.Error("Θ^∞ unexpectedly a fixpoint of Θ on L₃")
	}
}

func TestStratifiedPi2(t *testing.T) {
	// π₂ under stratified semantics: S2 = TC × complement(TC).
	src := `
S1(X,Y) :- E(X,Y).
S1(X,Y) :- E(X,Z), S1(Z,Y).
S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).
`
	db := pathDB(3) // TC = {(1,2),(1,3),(2,3)}, complement has 6 pairs
	res, err := Stratified(parser.MustProgram(src), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.State["S1"].Len() != 3 {
		t.Errorf("S1 len = %d, want 3", res.State["S1"].Len())
	}
	if res.State["S2"].Len() != 3*6 {
		t.Errorf("S2 len = %d, want 18", res.State["S2"].Len())
	}
}

func TestStratifiedRejectsPi1(t *testing.T) {
	if _, err := Stratified(parser.MustProgram(pi1Src), pathDB(3)); err == nil {
		t.Error("stratified semantics accepted π₁")
	}
}

func TestStratifiedDoesNotMutateDB(t *testing.T) {
	db := pathDB(3)
	before := db.String()
	if _, err := Stratified(parser.MustProgram(tcSrc), db); err != nil {
		t.Fatal(err)
	}
	if db.String() != before {
		t.Error("Stratified mutated the input database")
	}
}

func TestDistanceQueryInflationary(t *testing.T) {
	// Proposition 2: under inflationary semantics the carrier S3
	// computes D(x,y,x*,y*) ⇔ dist(x,y) ≤ dist(x*,y*), with "yes"
	// whenever x→y is connected but x*→y* is not.
	for _, mkdb := range []func() *relation.Database{
		func() *relation.Database { return pathDB(4) },
		func() *relation.Database { return randomEdgeDB(rand.New(rand.NewSource(7)), 5, 0.3) },
	} {
		db := mkdb()
		dist := bfsDistances(db)
		in := engine.MustNew(parser.MustProgram(distanceSrc), db)
		res := Inflationary(in)
		n := db.Universe().Size()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				dxy, okxy := dist[[2]int{x, y}]
				for xs := 0; xs < n; xs++ {
					for ys := 0; ys < n; ys++ {
						dst, okst := dist[[2]int{xs, ys}]
						want := okxy && (!okst || dxy <= dst)
						got := res.State["S3"].Has(relation.Tuple{x, y, xs, ys})
						if got != want {
							t.Fatalf("D(%d,%d,%d,%d) = %v, want %v (d=%d,%v d*=%d,%v)",
								x, y, xs, ys, got, want, dxy, okxy, dst, okst)
						}
					}
				}
			}
		}
	}
}

func TestDistanceQueryStratifiedDiffers(t *testing.T) {
	// The same rules as a stratified program compute TC(x,y) ∧ ¬TC(x*,y*),
	// which differs from the distance query (paper, end of §4).
	db := pathDB(3)
	prog := parser.MustProgram(distanceSrc)
	strat, err := Stratified(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	in := engine.MustNew(parser.MustProgram(distanceSrc), db)
	infl := Inflationary(in)

	u := db.Universe()
	id := func(s string) int {
		v, ok := u.Lookup(s)
		if !ok {
			t.Fatalf("missing %s", s)
		}
		return v
	}
	// dist(1,2)=1 ≤ dist(1,3)=2, so inflationary holds; but TC(1,3) is
	// true, so stratified does not.
	q := relation.Tuple{id("1"), id("2"), id("1"), id("3")}
	if !infl.State["S3"].Has(q) {
		t.Error("inflationary missing (1,2,1,3)")
	}
	if strat.State["S3"].Has(q) {
		t.Error("stratified unexpectedly contains (1,2,1,3)")
	}
	// Both contain (1,2,3,1): no path 3→1.
	q2 := relation.Tuple{id("1"), id("2"), id("3"), id("1")}
	if !infl.State["S3"].Has(q2) || !strat.State["S3"].Has(q2) {
		t.Error("both semantics should contain (1,2,3,1)")
	}
	// Stratified S3 must equal TC × ¬TC exactly.
	tc := strat.State["S1"]
	n := u.Size()
	want := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if !tc.Has(relation.Tuple{x, y}) {
				continue
			}
			for xs := 0; xs < n; xs++ {
				for ys := 0; ys < n; ys++ {
					if !tc.Has(relation.Tuple{xs, ys}) {
						want++
					}
				}
			}
		}
	}
	if strat.State["S3"].Len() != want {
		t.Errorf("stratified S3 len = %d, want %d", strat.State["S3"].Len(), want)
	}
}

func TestWellFoundedWinMove(t *testing.T) {
	// win(X) ← move(X,Y), ¬win(Y) on the path 1→2→3: 3 is lost, 2 won,
	// 1 lost; the model is total.
	src := "win(X) :- move(X,Y), !win(Y)."
	db := relation.NewDatabase()
	db.AddFact("move", "1", "2")
	db.AddFact("move", "2", "3")
	in := engine.MustNew(parser.MustProgram(src), db)
	wf := WellFounded(in)
	if !wf.Total() {
		t.Fatalf("expected total model, undefined = %v", wf.Undefined().Format(db.Universe()))
	}
	two, _ := db.Universe().Lookup("2")
	if wf.True["win"].Len() != 1 || !wf.True["win"].Has(relation.Tuple{two}) {
		t.Errorf("True win = %v, want {2}", wf.True["win"].Format(db.Universe()))
	}
}

func TestWellFoundedDraw(t *testing.T) {
	// On the 2-cycle a↔b every position is a draw: win is undefined on
	// both.
	src := "win(X) :- move(X,Y), !win(Y)."
	db := relation.NewDatabase()
	db.AddFact("move", "a", "b")
	db.AddFact("move", "b", "a")
	in := engine.MustNew(parser.MustProgram(src), db)
	wf := WellFounded(in)
	if wf.Total() {
		t.Fatal("expected a partial model on the 2-cycle")
	}
	if wf.True["win"].Len() != 0 {
		t.Errorf("True win = %v, want ∅", wf.True["win"].Format(db.Universe()))
	}
	if wf.Undefined()["win"].Len() != 2 {
		t.Errorf("Undefined win len = %d, want 2", wf.Undefined()["win"].Len())
	}
}

func TestWellFoundedAgreesWithStratified(t *testing.T) {
	// On stratified programs the well-founded model is total and equals
	// the stratified (perfect) model.
	src := `
S1(X,Y) :- E(X,Y).
S1(X,Y) :- E(X,Z), S1(Z,Y).
S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).
`
	for seed := int64(0); seed < 5; seed++ {
		db := randomEdgeDB(rand.New(rand.NewSource(seed)), 4, 0.3)
		prog := parser.MustProgram(src)
		strat, err := Stratified(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		in := engine.MustNew(parser.MustProgram(src), db)
		wf := WellFounded(in)
		if !wf.Total() {
			t.Fatalf("seed %d: WF not total on stratified program", seed)
		}
		if !wf.True.Equal(strat.State) {
			t.Errorf("seed %d: WF and stratified differ\nwf: %v\nstrat: %v",
				seed, wf.True.Format(db.Universe()), strat.State.Format(db.Universe()))
		}
	}
}

func TestWellFoundedToggleAllUndefined(t *testing.T) {
	// T(z) ← ¬T(w): the classic no-fixpoint program has the everywhere-
	// undefined well-founded model.
	db := relation.NewDatabase()
	db.AddConstant("a")
	in := engine.MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	wf := WellFounded(in)
	if wf.True["T"].Len() != 0 {
		t.Errorf("True T = %v", wf.True["T"].Format(db.Universe()))
	}
	if wf.Undefined()["T"].Len() != 1 {
		t.Errorf("Undefined T len = %d, want 1", wf.Undefined()["T"].Len())
	}
}

func TestPropNaiveEqualsSemiNaive(t *testing.T) {
	progs := []string{
		tcSrc,
		pi1Src,
		distanceSrc,
		`P(X) :- V(X), !E(X,X).
V(X) :- E(X,Y).
V(X) :- E(Y,X).`,
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := progs[int(pick)%len(progs)]
		db := randomEdgeDB(rng, 5, 0.3)
		a := InflationaryMode(engine.MustNew(parser.MustProgram(src), db), Naive)
		b := InflationaryMode(engine.MustNew(parser.MustProgram(src), db), SemiNaive)
		return a.State.Equal(b.State)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropInflationaryIsInflationary(t *testing.T) {
	// Each evaluation's result contains Θ(∅) and is contained in the
	// full state; and re-running is deterministic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomEdgeDB(rng, 5, 0.25)
		in := engine.MustNew(parser.MustProgram(pi1Src), db)
		res := Inflationary(in)
		theta1 := in.Apply(in.NewState())
		if !theta1.SubsetOf(res.State) {
			return false
		}
		res2 := Inflationary(in)
		return res.State.Equal(res2.State)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropRoundsWithinBound(t *testing.T) {
	// Paper §4: the inflationary iteration stabilizes within |A|^k
	// stages (k the maximum IDB arity); with the extra no-op detection
	// round this bounds Rounds by |A|^k + 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomEdgeDB(rng, 4, 0.4)
		in := engine.MustNew(parser.MustProgram(tcSrc), db)
		res := Inflationary(in)
		n := db.Universe().Size()
		return res.Stats.Rounds <= n*n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWellFoundedStatsPopulated(t *testing.T) {
	db := pathDB(4)
	in := engine.MustNew(parser.MustProgram("win(X) :- E(X,Y), !win(Y)."), db)
	wf := WellFounded(in)
	if wf.Outer < 1 || wf.Stats.Rounds < 2 {
		t.Errorf("stats = %+v outer = %d", wf.Stats, wf.Outer)
	}
}

// TestPropFrontierBitExactAllSemantics is the PR 4 acceptance property:
// with the frontier (dedup-at-emit) pipeline and intra-rule sharding
// enabled, every semantics — inflationary, least fixpoint, stratified,
// and well-founded — produces exactly the state the derive+Diff oracle
// produces, across worker counts.  Stratified evaluation constructs its
// engine instances internally, so the toggles go through the process
// defaults.
func TestPropFrontierBitExactAllSemantics(t *testing.T) {
	defer func() {
		engine.SetDefaultFrontier(true)
		engine.SetDefaultSharding(true)
		engine.SetDefaultWorkers(0)
	}()

	type run struct {
		infl, strat engine.State
		lfp         engine.State
		wfTrue      engine.State
		wfPoss      engine.State
	}
	eval := func(src string, db *relation.Database, frontier bool, workers int) run {
		engine.SetDefaultFrontier(frontier)
		engine.SetDefaultSharding(frontier)
		engine.SetDefaultWorkers(workers)
		var r run
		prog := parser.MustProgram(src)
		r.infl = Inflationary(engine.MustNew(prog, db.Clone())).State
		wf := WellFounded(engine.MustNew(prog, db.Clone()))
		r.wfTrue, r.wfPoss = wf.True, wf.Possible
		if res, err := Stratified(prog, db.Clone()); err == nil {
			r.strat = res.State
		}
		if res, err := LeastFixpoint(engine.MustNew(prog, db.Clone())); err == nil {
			r.lfp = res.State
		}
		return r
	}
	same := func(a, b engine.State) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || a.Equal(b)
	}

	progs := []string{tcSrc, pi1Src, distanceSrc}
	for seed := int64(0); seed < 4; seed++ {
		db := randomEdgeDB(rand.New(rand.NewSource(seed)), 6, 0.3)
		for _, src := range progs {
			want := eval(src, db, false, 1)
			for _, nw := range []int{1, 2, runtime.GOMAXPROCS(0) + 2} {
				got := eval(src, db, true, nw)
				if !same(got.infl, want.infl) {
					t.Fatalf("seed %d workers %d: inflationary differs under frontier\n%s", seed, nw, src)
				}
				if !same(got.lfp, want.lfp) {
					t.Fatalf("seed %d workers %d: least fixpoint differs under frontier\n%s", seed, nw, src)
				}
				if !same(got.strat, want.strat) {
					t.Fatalf("seed %d workers %d: stratified differs under frontier\n%s", seed, nw, src)
				}
				if !same(got.wfTrue, want.wfTrue) || !same(got.wfPoss, want.wfPoss) {
					t.Fatalf("seed %d workers %d: well-founded differs under frontier\n%s", seed, nw, src)
				}
			}
		}
	}
}

// TestFrontierFilterEngages checks the fixpoint loop's prefilter
// lifecycle end to end on a workload big enough to cross the filter
// size threshold: the filtered run must be bit-exact with the
// exact-probe run (state and core stats) while actually consulting —
// and resolving some probes through — the filter.
func TestFrontierFilterEngages(t *testing.T) {
	db := randomEdgeDB(rand.New(rand.NewSource(21)), 48, 0.08)
	prog := parser.MustProgram(tcSrc)

	ref := engine.MustNew(prog, db.Clone())
	ref.SetFrontierFilter(false)
	want := Inflationary(ref)
	if want.Stats.FilterProbes != 0 || want.Stats.FilterSkips != 0 {
		t.Fatalf("filter-off run reported filter activity: %+v", want.Stats)
	}
	if want.Stats.Tuples < 1024 {
		t.Fatalf("workload too small to cross the filter threshold: %d tuples", want.Stats.Tuples)
	}

	in := engine.MustNew(prog, db.Clone())
	in.SetFrontierFilter(true)
	got := Inflationary(in)
	if !got.State.Equal(want.State) {
		t.Fatal("filtered fixpoint differs from exact fixpoint")
	}
	if got.Stats.Core() != want.Stats.Core() {
		t.Fatalf("core stats differ: got %+v want %+v", got.Stats, want.Stats)
	}
	if got.Stats.FilterProbes <= 0 {
		t.Fatal("prefilter never consulted in the fixpoint loop")
	}
	if got.Stats.FilterSkips <= 0 || got.Stats.FilterSkips > got.Stats.FilterProbes {
		t.Fatalf("implausible filter tallies: %+v", got.Stats)
	}
}
