package reductions

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/relation"
)

// gatePred names the IDB predicate of gate i; the output gate is
// renamed to the edge relation E of π_COL, per the proof of Theorem 4.
func gatePred(i, last int) string {
	if i == last {
		return "e"
	}
	return fmt.Sprintf("g%d", i)
}

// zVar names the j-th of the 2n gate-relation variables.
func zVar(j int) string { return fmt.Sprintf("Z%d", j) }

// PiSuccinct3Col builds the Theorem 4 reduction: given a circuit C
// with 2n inputs presenting a graph on {0,1}ⁿ, it returns a DATALOG¬
// program π_SC and a database over the binary domain such that
// (π_SC, D) has a fixpoint iff the presented graph is 3-colorable.
//
// The program has one 2n-ary nondatabase relation per gate, defined by
//
//	AND:  Gᵢ(z̄) ← G_b(z̄), G_c(z̄)
//	OR:   Gᵢ(z̄) ← G_b(z̄)   and   Gᵢ(z̄) ← G_c(z̄)
//	NOT:  Gᵢ(z̄) ← ¬G_b(z̄)
//	IN j: Gᵢ(z₁,…,z_{j-1}, 1, z_{j+1},…,z_{2n}) ←
//
// the output gate is identified with the edge relation E, and the
// rules of π_COL (with x, y read as n-tuples of variables) are
// appended.  The database contributes only the domain {0,1}.
func PiSuccinct3Col(sg *circuit.SuccinctGraph) (*ast.Program, *relation.Database) {
	n := sg.N
	last := sg.C.Size() - 1
	prog := &ast.Program{}

	zs := make([]ast.Term, 2*n)
	for j := range zs {
		zs[j] = ast.Var(zVar(j))
	}
	gateAtom := func(i int, args []ast.Term) ast.Atom {
		return ast.Atom{Pred: gatePred(i, last), Args: args}
	}

	inputIdx := 0
	for i, g := range sg.C.Gates {
		switch g.Kind {
		case circuit.In:
			// The j-th input reads bit j of the concatenated address:
			// the head pins position j to the constant 1.
			args := make([]ast.Term, 2*n)
			copy(args, zs)
			args[inputIdx] = ast.Const("1")
			inputIdx++
			prog.Rules = append(prog.Rules, ast.Rule{Head: gateAtom(i, args)})
		case circuit.And:
			prog.Rules = append(prog.Rules, ast.NewRule(gateAtom(i, zs),
				ast.Pos(gateAtom(g.B, zs)), ast.Pos(gateAtom(g.C, zs))))
		case circuit.Or:
			prog.Rules = append(prog.Rules,
				ast.NewRule(gateAtom(i, zs), ast.Pos(gateAtom(g.B, zs))),
				ast.NewRule(gateAtom(i, zs), ast.Pos(gateAtom(g.C, zs))))
		case circuit.Not:
			prog.Rules = append(prog.Rules, ast.NewRule(gateAtom(i, zs),
				ast.Neg(gateAtom(g.B, zs))))
		}
	}

	// π_COL over n-tuples.
	xs := make([]ast.Term, n)
	ys := make([]ast.Term, n)
	for j := 0; j < n; j++ {
		xs[j] = ast.Var(fmt.Sprintf("X%d", j))
		ys[j] = ast.Var(fmt.Sprintf("Y%d", j))
	}
	xy := append(append([]ast.Term{}, xs...), ys...)
	colorAtom := func(pred string, args []ast.Term) ast.Atom {
		return ast.Atom{Pred: pred, Args: args}
	}
	edge := ast.Atom{Pred: "e", Args: xy}

	for _, c := range []string{"cR", "cB", "cG"} {
		prog.Rules = append(prog.Rules, ast.NewRule(colorAtom(c, xs), ast.Pos(colorAtom(c, xs))))
	}
	for _, c := range []string{"cR", "cB", "cG"} {
		prog.Rules = append(prog.Rules, ast.NewRule(colorAtom("p", xs),
			ast.Pos(edge), ast.Pos(colorAtom(c, xs)), ast.Pos(colorAtom(c, ys))))
	}
	pairs := [][2]string{{"cG", "cB"}, {"cB", "cR"}, {"cR", "cG"}}
	for _, pr := range pairs {
		prog.Rules = append(prog.Rules, ast.NewRule(colorAtom("p", xs),
			ast.Pos(colorAtom(pr[0], xs)), ast.Pos(colorAtom(pr[1], xs))))
	}
	prog.Rules = append(prog.Rules, ast.NewRule(colorAtom("p", xs),
		ast.Neg(colorAtom("cR", xs)), ast.Neg(colorAtom("cB", xs)), ast.Neg(colorAtom("cG", xs))))
	prog.Rules = append(prog.Rules, ast.NewRule(
		ast.NewAtom("t", ast.Var("ZT")),
		ast.Pos(colorAtom("p", xs)),
		ast.Neg(ast.NewAtom("t", ast.Var("WT")))))

	db := relation.NewDatabase()
	db.AddConstant("0")
	db.AddConstant("1")
	return prog, db
}

// SuccinctColoringFromFixpoint reads the coloring of the presented
// graph out of a fixpoint of π_SC: vertex v's color is its membership
// in cR/cB/cG at its bit address.
func SuccinctColoringFromFixpoint(sg *circuit.SuccinctGraph, in *engine.Instance, st engine.State) []int {
	u := in.Universe()
	zero, _ := u.Lookup("0")
	one, _ := u.Lookup("1")
	colors := make([]int, sg.NumVertices())
	for v := range colors {
		colors[v] = -1
		t := make(relation.Tuple, sg.N)
		for j := 0; j < sg.N; j++ {
			if v&(1<<j) != 0 {
				t[j] = one
			} else {
				t[j] = zero
			}
		}
		switch {
		case st["cR"].Has(t):
			colors[v] = 0
		case st["cB"].Has(t):
			colors[v] = 1
		case st["cG"].Has(t):
			colors[v] = 2
		}
	}
	return colors
}

// ExplicitGraph expands the succinct graph into an explicit
// graphs.Graph on 2ⁿ vertices — the object the Lemma 1 reduction and
// the 3-coloring oracle run on, and the exponential blowup Theorem 4's
// experiment measures.
func ExplicitGraph(sg *circuit.SuccinctGraph) *graphs.Graph {
	g := graphs.New(sg.NumVertices())
	for _, e := range sg.ExplicitEdges() {
		g.AddEdge(e[0], e[1])
	}
	return g
}
