package reductions

import (
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/relation"
)

// PiCOL returns the paper's fixed program π_COL (Lemma 1): it has a
// fixpoint on a graph database E iff the graph is 3-colorable.
//
//	R(x) ← R(x)          B(x) ← B(x)          G(x) ← G(x)
//	P(x) ← E(x,y), R(x), R(y)   (and for B, G)
//	P(x) ← G(x), B(x)    P(x) ← B(x), R(x)    P(x) ← R(x), G(x)
//	P(x) ← ¬R(x), ¬B(x), ¬G(x)
//	T(z) ← P(x), ¬T(w)
func PiCOL() *ast.Program {
	return parser.MustProgram(`
R(X) :- R(X).
B(X) :- B(X).
G(X) :- G(X).
P(X) :- E(X,Y), R(X), R(Y).
P(X) :- E(X,Y), B(X), B(Y).
P(X) :- E(X,Y), G(X), G(Y).
P(X) :- G(X), B(X).
P(X) :- B(X), R(X).
P(X) :- R(X), G(X).
P(X) :- !R(X), !B(X), !G(X).
T(Z) :- P(X), !T(W).
`)
}

// ColoringFromFixpoint reads a proper 3-coloring out of a fixpoint of
// (π_COL, G): color 0/1/2 for R/B/G membership of each vertex.
func ColoringFromFixpoint(g *graphs.Graph, db *relation.Database, st engine.State) []int {
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		colors[v] = -1
		id, ok := db.Universe().Lookup(graphs.VertexName(v))
		if !ok {
			continue
		}
		switch {
		case st["R"].Has(relation.Tuple{id}):
			colors[v] = 0
		case st["B"].Has(relation.Tuple{id}):
			colors[v] = 1
		case st["G"].Has(relation.Tuple{id}):
			colors[v] = 2
		}
	}
	return colors
}

// FixpointFromColoring builds the state (R,B,G = color classes, P = ∅,
// T = ∅) corresponding to a proper 3-coloring.
func FixpointFromColoring(in *engine.Instance, g *graphs.Graph, colors []int) engine.State {
	st := in.NewState()
	u := in.Universe()
	preds := []string{"R", "B", "G"}
	for v := 0; v < g.N(); v++ {
		if id, ok := u.Lookup(graphs.VertexName(v)); ok && colors[v] >= 0 && colors[v] < 3 {
			st[preds[colors[v]]].Add(relation.Tuple{id})
		}
	}
	return st
}
