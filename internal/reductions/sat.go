// Package reductions implements the concrete constructions of the
// paper's Section 3:
//
//   - Example 1: the correspondence between SATISFIABILITY instances I
//     and databases D(I) over the vocabulary (V, P, N), and the fixed
//     program π_SAT whose fixpoints on D(I) are exactly the satisfying
//     assignments of I (Theorems 1 and 2).
//   - Lemma 1: the fixed program π_COL that has a fixpoint on a graph
//     database iff the graph is 3-colorable.
//   - Theorem 4: the construction π_SC(C) that turns a Boolean circuit
//     C presenting a graph on {0,1}ⁿ into a DATALOG¬ program over the
//     binary domain whose fixpoint existence is equivalent to
//     3-colorability of the presented graph (SUCCINCT 3-COLORING).
//
// Each construction comes with both directions of the correspondence
// (assignment ↔ fixpoint, coloring ↔ fixpoint) so the equivalences are
// testable, not just claimed.
package reductions

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
)

// SATInstance is a CNF SATISFIABILITY instance with DIMACS-style
// literals (variable v ∈ 1..NumVars appears as +v or −v).
type SATInstance struct {
	NumVars int
	Clauses [][]int
}

// Validate checks literal ranges.
func (i *SATInstance) Validate() error {
	for ci, c := range i.Clauses {
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if v == 0 || v > i.NumVars {
				return fmt.Errorf("reductions: clause %d has out-of-range literal %d", ci, l)
			}
		}
	}
	return nil
}

// Eval reports whether the assignment (indexed by variable, entry 0
// ignored) satisfies the instance.
func (i *SATInstance) Eval(assign []bool) bool {
	for _, c := range i.Clauses {
		ok := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == assign[v] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CountModels counts satisfying assignments by brute force (intended
// for small instances used in tests and experiment tables).
func (i *SATInstance) CountModels() int {
	assign := make([]bool, i.NumVars+1)
	count := 0
	for mask := 0; mask < 1<<i.NumVars; mask++ {
		for v := 1; v <= i.NumVars; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if i.Eval(assign) {
			count++
		}
	}
	return count
}

// VarName returns the database constant for variable v of an instance.
func VarName(v int) string { return fmt.Sprintf("x%d", v) }

// ClauseName returns the database constant for clause index j (0-based).
func ClauseName(j int) string { return fmt.Sprintf("c%d", j) }

// SATDatabase builds the paper's D(I) over the vocabulary (V, P, N):
// the universe is the variables plus the clauses, V holds the
// variables, and P(c,v) / N(c,v) record positive/negative occurrences
// of v in c.
func SATDatabase(inst *SATInstance) (*relation.Database, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	db := relation.NewDatabase()
	for v := 1; v <= inst.NumVars; v++ {
		db.AddFact("V", VarName(v))
	}
	for j, c := range inst.Clauses {
		db.AddConstant(ClauseName(j))
		for _, l := range c {
			if l > 0 {
				db.AddFact("P", ClauseName(j), VarName(l))
			} else {
				db.AddFact("N", ClauseName(j), VarName(-l))
			}
		}
	}
	// The relations P and N must exist even for degenerate instances.
	db.MustEnsure("P", 2)
	db.MustEnsure("N", 2)
	db.MustEnsure("V", 1)
	return db, nil
}

// PiSAT returns the paper's fixed program π_SAT (Example 1):
//
//	S(x) ← S(x)
//	Q(x) ← V(x)
//	Q(x) ← ¬S(x), P(x,y), S(y)
//	Q(x) ← ¬S(x), N(x,y), ¬S(y)
//	T(z) ← ¬Q(u), ¬T(w)
//
// For every instance I, the fixpoints of (π_SAT, D(I)) correspond
// one-to-one to the satisfying assignments of I.
func PiSAT() *ast.Program {
	return parser.MustProgram(`
S(X) :- S(X).
Q(X) :- V(X).
Q(X) :- !S(X), P(X,Y), S(Y).
Q(X) :- !S(X), N(X,Y), !S(Y).
T(Z) :- !Q(U), !T(W).
`)
}

// AssignmentFromFixpoint reads the satisfying assignment out of a
// fixpoint of (π_SAT, D(I)): variable v is true iff S(x_v) holds.
func AssignmentFromFixpoint(inst *SATInstance, db *relation.Database, st engine.State) []bool {
	assign := make([]bool, inst.NumVars+1)
	s := st["S"]
	for v := 1; v <= inst.NumVars; v++ {
		if id, ok := db.Universe().Lookup(VarName(v)); ok {
			assign[v] = s.Has(relation.Tuple{id})
		}
	}
	return assign
}

// FixpointFromAssignment builds the state (S = true variables,
// Q = universe, T = ∅) that the Theorem 1 proof exhibits as the
// fixpoint corresponding to a satisfying assignment.
func FixpointFromAssignment(in *engine.Instance, inst *SATInstance, assign []bool) engine.State {
	st := in.NewState()
	u := in.Universe()
	for v := 1; v <= inst.NumVars; v++ {
		if assign[v] {
			if id, ok := u.Lookup(VarName(v)); ok {
				st["S"].Add(relation.Tuple{id})
			}
		}
	}
	for _, id := range u.Elements() {
		st["Q"].Add(relation.Tuple{id})
	}
	return st
}
