package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/graphs"
)

// randomInstance draws a small random 3-SAT instance.
func randomInstance(rng *rand.Rand, maxVars int) *SATInstance {
	n := 2 + rng.Intn(maxVars-1)
	m := 1 + rng.Intn(3*n)
	inst := &SATInstance{NumVars: n}
	for i := 0; i < m; i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		inst.Clauses = append(inst.Clauses, c)
	}
	return inst
}

func TestSATDatabaseShape(t *testing.T) {
	inst := &SATInstance{NumVars: 2, Clauses: [][]int{{1, -2}, {2}}}
	db, err := SATDatabase(inst)
	if err != nil {
		t.Fatal(err)
	}
	if db.Universe().Size() != 4 { // 2 vars + 2 clauses
		t.Errorf("universe = %d, want 4", db.Universe().Size())
	}
	if db.Relation("V").Len() != 2 || db.Relation("P").Len() != 2 || db.Relation("N").Len() != 1 {
		t.Errorf("V=%d P=%d N=%d", db.Relation("V").Len(), db.Relation("P").Len(), db.Relation("N").Len())
	}
}

func TestSATDatabaseValidation(t *testing.T) {
	if _, err := SATDatabase(&SATInstance{NumVars: 1, Clauses: [][]int{{2}}}); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if _, err := SATDatabase(&SATInstance{NumVars: 1, Clauses: [][]int{{0}}}); err == nil {
		t.Error("zero literal accepted")
	}
}

func TestTheorem1SATDirection(t *testing.T) {
	// Satisfiable instance: fixpoint exists and encodes a satisfying
	// assignment.
	inst := &SATInstance{NumVars: 3, Clauses: [][]int{{1, 2}, {-1, 3}, {-2, -3}}}
	db, _ := SATDatabase(inst)
	in := engine.MustNew(PiSAT(), db)
	has, st, err := fixpoint.Exists(in, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("no fixpoint for a satisfiable instance")
	}
	assign := AssignmentFromFixpoint(inst, db, st)
	if !inst.Eval(assign) {
		t.Errorf("extracted assignment %v does not satisfy the instance", assign[1:])
	}
}

func TestTheorem1UnsatDirection(t *testing.T) {
	// x ∧ ¬x: no fixpoint.
	inst := &SATInstance{NumVars: 1, Clauses: [][]int{{1}, {-1}}}
	db, _ := SATDatabase(inst)
	in := engine.MustNew(PiSAT(), db)
	has, _, err := fixpoint.Exists(in, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Error("fixpoint exists for an unsatisfiable instance")
	}
}

func TestTheorem1AssignmentToFixpoint(t *testing.T) {
	// The proof's constructed state (S = assignment, Q = Aⁿ, T = ∅)
	// must be a real fixpoint.
	inst := &SATInstance{NumVars: 2, Clauses: [][]int{{1, 2}}}
	db, _ := SATDatabase(inst)
	in := engine.MustNew(PiSAT(), db)
	for mask := 0; mask < 4; mask++ {
		assign := []bool{false, mask&1 != 0, mask&2 != 0}
		st := FixpointFromAssignment(in, inst, assign)
		if inst.Eval(assign) != in.IsFixpoint(st) {
			t.Errorf("mask %b: Eval=%v but IsFixpoint=%v",
				mask, inst.Eval(assign), in.IsFixpoint(st))
		}
	}
}

func TestPropTheorem1Bijection(t *testing.T) {
	// #fixpoints of (π_SAT, D(I)) = #satisfying assignments of I —
	// the bijection behind Theorems 1 and 2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 4)
		db, err := SATDatabase(inst)
		if err != nil {
			return false
		}
		in := engine.MustNew(PiSAT(), db)
		count, exact, err := fixpoint.Count(in, fixpoint.Options{}, 0)
		if err != nil || !exact {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := inst.CountModels()
		if count != want {
			t.Logf("seed %d: fixpoints=%d models=%d", seed, count, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2UniqueFixpoint(t *testing.T) {
	// (x) ∧ (x∨y) ∧ (¬y) has the unique model x=1,y=0.
	inst := &SATInstance{NumVars: 2, Clauses: [][]int{{1}, {1, 2}, {-2}}}
	db, _ := SATDatabase(inst)
	in := engine.MustNew(PiSAT(), db)
	ok, st, err := fixpoint.Unique(in, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("uniqueness not detected")
	}
	assign := AssignmentFromFixpoint(inst, db, st)
	if !assign[1] || assign[2] {
		t.Errorf("assignment = %v, want x=true y=false", assign[1:])
	}

	// Two models: x free with (y) — not unique.
	inst2 := &SATInstance{NumVars: 2, Clauses: [][]int{{2}}}
	db2, _ := SATDatabase(inst2)
	in2 := engine.MustNew(PiSAT(), db2)
	ok2, _, err := fixpoint.Unique(in2, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("non-unique instance reported unique")
	}
}

func TestLemma1Coloring(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
	}{
		{"path", graphs.Path(4)},
		{"K3", graphs.Complete(3)},
		{"K4", graphs.Complete(4)},
		{"odd wheel", graphs.Wheel(5)},
		{"even cycle", graphs.Cycle(6)},
	}
	for _, c := range cases {
		db := c.g.Database()
		in := engine.MustNew(PiCOL(), db)
		has, st, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		_, want := c.g.ThreeColoring()
		if has != want {
			t.Errorf("%s: fixpoint=%v, 3-colorable=%v", c.name, has, want)
		}
		if has {
			colors := ColoringFromFixpoint(c.g, db, st)
			if !c.g.IsProper3Coloring(colors) {
				t.Errorf("%s: extracted coloring improper: %v", c.name, colors)
			}
		}
	}
}

func TestLemma1ColoringToFixpoint(t *testing.T) {
	g := graphs.Cycle(6)
	db := g.Database()
	in := engine.MustNew(PiCOL(), db)
	colors, ok := g.ThreeColoring()
	if !ok {
		t.Fatal("C6 should be colorable")
	}
	st := FixpointFromColoring(in, g, colors)
	if !in.IsFixpoint(st) {
		t.Error("coloring state is not a fixpoint")
	}
}

func TestPropLemma1CountsMatch(t *testing.T) {
	// #fixpoints of (π_COL, G) = #proper 3-colorings of G.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphs.Random(rng, 4, 0.4)
		db := g.Database()
		in := engine.MustNew(PiCOL(), db)
		count, exact, err := fixpoint.Count(in, fixpoint.Options{}, 0)
		if err != nil || !exact {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := g.CountThreeColorings()
		if count != want {
			t.Logf("seed %d: fixpoints=%d colorings=%d", seed, count, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTheorem4Succinct(t *testing.T) {
	cases := []struct {
		name string
		sg   *circuit.SuccinctGraph
	}{
		{"empty n=1", circuit.EmptyGraph(1)},
		{"empty n=2", circuit.EmptyGraph(2)},
		{"cycle n=1", circuit.CycleGraph(1)},
		{"cycle n=2", circuit.CycleGraph(2)},
		{"complete n=1", circuit.CompleteGraph(1)},
		{"complete n=2", circuit.CompleteGraph(2)}, // K4: not 3-colorable
	}
	for _, c := range cases {
		prog, db := PiSuccinct3Col(c.sg)
		in, err := engine.New(prog, db)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		has, st, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		explicit := ExplicitGraph(c.sg)
		_, want := explicit.ThreeColoring()
		if has != want {
			t.Errorf("%s: fixpoint=%v, explicit 3-colorable=%v", c.name, has, want)
		}
		if has {
			colors := SuccinctColoringFromFixpoint(c.sg, in, st)
			if !explicit.IsProper3Coloring(colors) {
				t.Errorf("%s: extracted coloring improper: %v", c.name, colors)
			}
		}
	}
}

func TestPropTheorem4RandomCircuits(t *testing.T) {
	// Random circuits with 2 address bits: π_SC fixpoint existence must
	// track 3-colorability of the presented 4-vertex graph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(rng, 4, 6)
		sg, err := circuit.NewSuccinctGraph(c)
		if err != nil {
			return false
		}
		prog, db := PiSuccinct3Col(sg)
		in, err := engine.New(prog, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		has, _, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, want := ExplicitGraph(sg).ThreeColoring()
		if has != want {
			t.Logf("seed %d: fixpoint=%v colorable=%v", seed, has, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGateRelationsForcedByCompletion(t *testing.T) {
	// In any fixpoint of π_SC the edge relation must match the circuit
	// exactly (the proof's "G_k contains precisely the accepted
	// 2n-tuples").
	sg := circuit.CycleGraph(2)
	prog, db := PiSuccinct3Col(sg)
	in := engine.MustNew(prog, db)
	has, st, err := fixpoint.Exists(in, fixpoint.Options{})
	if err != nil || !has {
		t.Fatalf("has=%v err=%v", has, err)
	}
	u := in.Universe()
	zero, _ := u.Lookup("0")
	one, _ := u.Lookup("1")
	bit := func(x, j int) int {
		if x&(1<<j) != 0 {
			return one
		}
		return zero
	}
	nv := sg.NumVertices()
	for x := 0; x < nv; x++ {
		for y := 0; y < nv; y++ {
			tuple := make([]int, 2*sg.N)
			for j := 0; j < sg.N; j++ {
				tuple[j] = bit(x, j)
				tuple[sg.N+j] = bit(y, j)
			}
			if st["e"].Has(tuple) != sg.HasEdge(x, y) {
				t.Fatalf("edge(%d,%d) mismatch", x, y)
			}
		}
	}
}
