// Package graphs provides the directed-graph families the paper's
// examples and experiments run on — paths Lₙ, cycles Cₙ, disjoint
// cycle unions Gₙ, wheels, complete and random graphs — together with
// the baseline algorithms the DATALOG¬ results are validated against:
// BFS path distances (Proposition 2's distance query) and a
// backtracking 3-coloring oracle (Lemma 1 and Theorem 4).
package graphs

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Graph is a directed graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj [][]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds the directed edge u→v.  It panics on out-of-range
// endpoints.  Duplicate edges collapse.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graphs: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
}

// HasEdge reports whether u→v is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Out returns the out-neighbours of u (shared slice; do not mutate).
func (g *Graph) Out(u int) []int { return g.adj[u] }

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// Database converts the graph to a database with the binary relation
// E over constants "v0".."v{n-1}".  Every vertex is interned even if
// isolated.
func (g *Graph) Database() *relation.Database {
	db := relation.NewDatabase()
	for v := 0; v < g.n; v++ {
		db.AddConstant(fmt.Sprintf("v%d", v))
	}
	for _, e := range g.Edges() {
		db.AddFact("E", fmt.Sprintf("v%d", e[0]), fmt.Sprintf("v%d", e[1]))
	}
	return db
}

// VertexName returns the database constant name of vertex v.
func VertexName(v int) string { return fmt.Sprintf("v%d", v) }

// --- families -----------------------------------------------------------

// Path returns the paper's Lₙ: vertices 0..n-1 with edges i→i+1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the paper's Cₙ: the directed cycle on n vertices.
func Cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// DisjointCycles returns the paper's Gₙ generalized: copies disjoint
// directed cycles, each of the given length.
func DisjointCycles(copies, length int) *Graph {
	g := New(copies * length)
	for c := 0; c < copies; c++ {
		base := c * length
		for i := 0; i < length; i++ {
			g.AddEdge(base+i, base+(i+1)%length)
		}
	}
	return g
}

// Complete returns the complete directed graph (no self-loops).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Wheel returns the wheel W_k: hub 0 joined (symmetrically) to a
// symmetric cycle on 1..k.  For odd k the wheel is not 3-colorable.
func Wheel(k int) *Graph {
	g := New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i)
		g.AddEdge(i, 0)
		next := i%k + 1
		g.AddEdge(i, next)
		g.AddEdge(next, i)
	}
	return g
}

// Random returns a G(n, p) digraph (no self-loops) drawn from rng.
func Random(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Grid returns an r×c grid with edges right and down — a DAG with long
// shortest paths, useful for distance benchmarks.
func Grid(r, c int) *Graph {
	g := New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

// --- baselines ----------------------------------------------------------

// Distances returns d[u][v] = length of the shortest directed path
// from u to v using at least one edge (the distance notion of
// Proposition 2), or -1 if none exists.
func (g *Graph) Distances() [][]int {
	d := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		d[u] = make([]int, g.n)
		for v := range d[u] {
			d[u][v] = -1
		}
		// BFS seeded with the out-neighbours at distance 1.
		queue := make([]int, 0, g.n)
		for _, v := range g.adj[u] {
			if d[u][v] < 0 {
				d[u][v] = 1
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[x] {
				if d[u][v] < 0 {
					d[u][v] = d[u][x] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return d
}

// TransitiveClosure returns reach[u][v] = whether a path of ≥ 1 edge
// leads from u to v.
func (g *Graph) TransitiveClosure() [][]bool {
	d := g.Distances()
	out := make([][]bool, g.n)
	for u := range d {
		out[u] = make([]bool, g.n)
		for v := range d[u] {
			out[u][v] = d[u][v] > 0
		}
	}
	return out
}

// ThreeColoring searches for a proper 3-coloring treating edges as
// symmetric constraints (the constraint the paper's π_COL enforces).
// It returns the coloring (values 0,1,2 indexed by vertex) or ok=false.
// A self-loop makes the graph uncolorable.
func (g *Graph) ThreeColoring() (colors []int, ok bool) {
	colors = make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	// Symmetric adjacency for constraint checks.
	nbr := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u == v {
				return nil, false
			}
			nbr[u] = append(nbr[u], v)
			nbr[v] = append(nbr[v], u)
		}
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.n {
			return true
		}
		for c := 0; c < 3; c++ {
			okc := true
			for _, w := range nbr[v] {
				if colors[w] == c {
					okc = false
					break
				}
			}
			if okc {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if rec(0) {
		return colors, true
	}
	return nil, false
}

// IsProper3Coloring verifies a coloring against the symmetric edge
// constraints.
func (g *Graph) IsProper3Coloring(colors []int) bool {
	if len(colors) != g.n {
		return false
	}
	for _, c := range colors {
		if c < 0 || c > 2 {
			return false
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u == v || colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// CountThreeColorings counts all proper 3-colorings (ordered, i.e.
// colors are distinguishable) by backtracking.
func (g *Graph) CountThreeColorings() int {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	nbr := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u == v {
				return 0
			}
			nbr[u] = append(nbr[u], v)
			nbr[v] = append(nbr[v], u)
		}
	}
	count := 0
	var rec func(v int)
	rec = func(v int) {
		if v == g.n {
			count++
			return
		}
		for c := 0; c < 3; c++ {
			okc := true
			for _, w := range nbr[v] {
				if colors[w] == c {
					okc = false
					break
				}
			}
			if okc {
				colors[v] = c
				rec(v + 1)
				colors[v] = -1
			}
		}
	}
	rec(0)
	return count
}
