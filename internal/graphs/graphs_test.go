package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFamilies(t *testing.T) {
	if g := Path(5); g.NumEdges() != 4 || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("Path wrong")
	}
	if g := Cycle(5); g.NumEdges() != 5 || !g.HasEdge(4, 0) {
		t.Error("Cycle wrong")
	}
	if g := Complete(4); g.NumEdges() != 12 || g.HasEdge(2, 2) {
		t.Error("Complete wrong")
	}
	if g := DisjointCycles(3, 4); g.N() != 12 || g.NumEdges() != 12 || g.HasEdge(3, 4) {
		t.Error("DisjointCycles wrong")
	}
	if g := Grid(2, 3); g.NumEdges() != 7 {
		t.Errorf("Grid edges = %d, want 7", g.NumEdges())
	}
}

func TestAddEdgeDedupAndBounds(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Error("duplicate edge not collapsed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestDatabase(t *testing.T) {
	g := Path(3)
	db := g.Database()
	if db.Universe().Size() != 3 {
		t.Errorf("universe = %d", db.Universe().Size())
	}
	if db.Relation("E").Len() != 2 {
		t.Errorf("|E| = %d", db.Relation("E").Len())
	}
	// Isolated vertices still interned.
	db2 := New(4).Database()
	if db2.Universe().Size() != 4 {
		t.Errorf("isolated universe = %d", db2.Universe().Size())
	}
}

func TestDistancesPath(t *testing.T) {
	d := Path(4).Distances()
	want := map[[2]int]int{
		{0, 1}: 1, {0, 2}: 2, {0, 3}: 3,
		{1, 2}: 1, {1, 3}: 2, {2, 3}: 1,
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			exp, ok := want[[2]int{u, v}]
			if !ok {
				exp = -1
			}
			if d[u][v] != exp {
				t.Errorf("d[%d][%d] = %d, want %d", u, v, d[u][v], exp)
			}
		}
	}
}

func TestDistancesCycleSelf(t *testing.T) {
	// On C₄ every vertex reaches itself in exactly 4 steps (≥1-edge
	// distance, not 0).
	d := Cycle(4).Distances()
	for v := 0; v < 4; v++ {
		if d[v][v] != 4 {
			t.Errorf("d[%d][%d] = %d, want 4", v, v, d[v][v])
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	tc := Path(3).TransitiveClosure()
	if !tc[0][2] || tc[2][0] || tc[0][0] {
		t.Errorf("TC wrong: %v", tc)
	}
}

func TestThreeColoring(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", Path(5), true},
		{"odd cycle", Cycle(5), true},  // 3-colorable (needs 3)
		{"even cycle", Cycle(6), true}, // 2-colorable
		{"K3", Complete(3), true},
		{"K4", Complete(4), false},
		{"odd wheel", Wheel(5), false}, // hub + odd cycle needs 4
		{"even wheel", Wheel(6), true},
		{"empty", New(3), true},
	}
	for _, c := range cases {
		colors, ok := c.g.ThreeColoring()
		if ok != c.want {
			t.Errorf("%s: colorable = %v, want %v", c.name, ok, c.want)
		}
		if ok && !c.g.IsProper3Coloring(colors) {
			t.Errorf("%s: returned coloring invalid", c.name)
		}
	}
}

func TestSelfLoopUncolorable(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if _, ok := g.ThreeColoring(); ok {
		t.Error("self-loop graph colorable")
	}
	if g.CountThreeColorings() != 0 {
		t.Error("self-loop graph has colorings")
	}
}

func TestCountThreeColorings(t *testing.T) {
	// K3 has 3! = 6 proper colorings; a single edge has 3·2=6; an empty
	// 2-vertex graph has 9.
	if got := Complete(3).CountThreeColorings(); got != 6 {
		t.Errorf("K3 colorings = %d, want 6", got)
	}
	e := New(2)
	e.AddEdge(0, 1)
	if got := e.CountThreeColorings(); got != 6 {
		t.Errorf("edge colorings = %d, want 6", got)
	}
	if got := New(2).CountThreeColorings(); got != 9 {
		t.Errorf("empty colorings = %d, want 9", got)
	}
}

func TestPropColoringSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, 6, 0.35)
		colors, ok := g.ThreeColoring()
		if !ok {
			// Verify by exhaustive count.
			return g.CountThreeColorings() == 0
		}
		return g.IsProper3Coloring(colors) && g.CountThreeColorings() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropDistanceTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, 7, 0.3)
		d := g.Distances()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				for w := 0; w < g.N(); w++ {
					if d[u][v] > 0 && d[v][w] > 0 {
						if d[u][w] < 0 || d[u][w] > d[u][v]+d[v][w] {
							return false
						}
					}
				}
			}
		}
		// Every edge has distance 1.
		for _, e := range g.Edges() {
			if d[e[0]][e[1]] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
