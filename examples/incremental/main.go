// Incremental maintenance walkthrough: keep a program's materialized
// result exact while facts arrive and depart, without recomputing the
// fixpoint — the machinery behind the cmd/serve daemon.
//
// Three stops:
//  1. transitive closure under single edge inserts/deletes
//     (counting/DRed over strata),
//  2. a published snapshot staying stable while the state moves on
//     (the daemon's concurrent-reader contract),
//  3. a general inflationary program maintained by stage-log replay.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// --- 1. Transitive closure under updates.
	tc, err := repro.ParseProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- e(X,Z), s(Z,Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := repro.ParseFacts("e(a,b). e(b,c). e(c,d).")
	if err != nil {
		log.Fatal(err)
	}
	m, err := repro.Maintain(tc, db, repro.SemanticsLFP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial closure of the path a→b→c→d:")
	fmt.Println("  s =", m.State()["s"].Format(m.Universe()))

	// Close the cycle: one inserted edge, maintained incrementally.
	stats, err := m.Update([]repro.Fact{{Pred: "e", Args: []string{"d", "a"}}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsert e(d,a): strategy=%s, +%d IDB tuples in %v\n",
		stats.Strategy, stats.InsertedIDB, stats.Duration)
	fmt.Println("  s =", m.State()["s"].Format(m.Universe()))

	// Delete an edge: DRed overdeletes everything the edge supported,
	// then rederives what survives via other paths.
	stats, err = m.Update(nil, []repro.Fact{{Pred: "e", Args: []string{"b", "c"}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelete e(b,c): strategy=%s, -%d IDB tuples\n", stats.Strategy, stats.DeletedIDB)
	fmt.Println("  s =", m.State()["s"].Format(m.Universe()))

	// --- 2. Published snapshots are immutable points in time.
	snap := m.Snapshot()
	if _, err := m.Update([]repro.Fact{{Pred: "e", Args: []string{"b", "c"}}}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot taken at gen %d still has |s| = %d; live state has |s| = %d\n",
		snap.Gen, snap.Relation("s").Len(), m.State()["s"].Len())

	// --- 3. General inflationary program: stage-log replay.  π₁-style
	// win-move has recursion through negation, so the stage sequence IS
	// the semantics; the maintainer checkpoints every stage and replays
	// only from the first one an update can affect.
	win, err := repro.ParseProgram("win(X) :- e(X,Y), !win(Y).")
	if err != nil {
		log.Fatal(err)
	}
	gdb, err := repro.ParseFacts("e(a,b). e(b,c). e(c,d). e(x,y).")
	if err != nil {
		log.Fatal(err)
	}
	wm, err := repro.Maintain(win, gdb, repro.SemanticsInflationary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwin-move on a→b→c→d (plus x→y), %d logged stages:\n", wm.Stages())
	fmt.Println("  win =", wm.State()["win"].Format(wm.Universe()))
	stats, err = wm.Update([]repro.Fact{{Pred: "e", Args: []string{"d", "x"}}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert e(d,x): strategy=%s, skipped %d stages, replayed %d\n",
		stats.Strategy, stats.SkippedStages, stats.ReplayedStages)
	fmt.Println("  win =", wm.State()["win"].Format(wm.Universe()))
}
