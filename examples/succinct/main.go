// succinct reproduces Theorem 4: a Boolean circuit with 2n inputs
// presents a graph on {0,1}ⁿ; the construction π_SC turns the circuit
// into a DATALOG¬ program over the binary domain whose fixpoint
// existence decides SUCCINCT 3-COLORING — the problem that makes
// fixpoint existence NEXP-complete when the program is part of the
// input.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/reductions"
)

func main() {
	for _, cs := range []struct {
		name string
		sg   *circuit.SuccinctGraph
	}{
		{"directed cycle on 2^2 = 4 vertices (2-colorable)", circuit.CycleGraph(2)},
		{"complete graph K4 (not 3-colorable)", circuit.CompleteGraph(2)},
		{"complete graph K2 (3-colorable)", circuit.CompleteGraph(1)},
	} {
		fmt.Printf("=== %s\n", cs.name)
		fmt.Printf("circuit: %d gates, %d inputs → graph on %d vertices\n",
			cs.sg.C.Size(), 2*cs.sg.N, cs.sg.NumVertices())

		prog, db := reductions.PiSuccinct3Col(cs.sg)
		fmt.Printf("π_SC: %d rules over the domain {0,1} (gate relations of arity %d)\n",
			len(prog.Rules), 2*cs.sg.N)

		in, err := engine.New(prog, db)
		if err != nil {
			log.Fatal(err)
		}
		has, st, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			log.Fatal(err)
		}

		explicit := reductions.ExplicitGraph(cs.sg)
		_, colorable := explicit.ThreeColoring()
		fmt.Printf("fixpoint exists: %v   explicit graph 3-colorable: %v\n", has, colorable)

		if has {
			colors := reductions.SuccinctColoringFromFixpoint(cs.sg, in, st)
			fmt.Printf("coloring read from the fixpoint: %v (proper: %v)\n",
				colors, explicit.IsProper3Coloring(colors))
		}
		fmt.Println()
	}
	fmt.Println("the succinct program stays polynomial in the circuit while the presented")
	fmt.Println("graph doubles with every extra address bit — Theorem 4's NEXP gap.")
}
