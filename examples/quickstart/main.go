// Quickstart: evaluate the paper's canonical programs through the
// public facade — transitive closure (π₃, a positive DATALOG program)
// under least-fixpoint semantics, and π₁ (negation through recursion)
// under the inflationary semantics of Section 4, plus a fixpoint
// analysis showing why "least fixpoint if it exists" is not a workable
// semantics for negation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// --- π₃: transitive closure, the standard DATALOG semantics.
	tc, err := repro.ParseProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- e(X,Z), s(Z,Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := repro.ParseFacts("e(a,b). e(b,c). e(c,d).")
	if err != nil {
		log.Fatal(err)
	}
	lfp, err := repro.LeastFixpoint(tc, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transitive closure (least fixpoint):")
	fmt.Println("  s =", lfp.State["s"].Format(lfp.Universe))

	// --- π₁: T(x) ← E(y,x), ¬T(y) — negation through recursion.
	pi1, err := repro.ParseProgram("t(X) :- e(Y,X), !t(Y).")
	if err != nil {
		log.Fatal(err)
	}
	infl, err := repro.Inflationary(pi1, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nπ₁ under inflationary semantics (Θ^∞ = Θ¹ = targets of edges):")
	fmt.Println("  t =", infl.State["t"].Format(infl.Universe))

	// --- Why not plain fixpoints?  On an even cycle π₁ has two
	// incomparable fixpoints and no least one; on an odd cycle, none.
	even, _ := repro.ParseFacts("e(v1,v2). e(v2,v3). e(v3,v4). e(v4,v1).")
	odd, _ := repro.ParseFacts("e(v1,v2). e(v2,v3). e(v3,v1).")
	for name, d := range map[string]*repro.Database{"C4": even, "C3": odd} {
		rep, err := repro.Analyze(pi1, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nπ₁ on %s: fixpoint exists=%v, count=%d, unique=%v\n",
			name, rep.Exists, rep.Count, rep.Unique)
	}
	fmt.Println("\n(inflationary semantics assigns meaning in every case — the paper's point)")
}
