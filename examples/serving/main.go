// Serving walkthrough: the production path of the daemon, in-process.
//
// Four stops:
//  1. build a server over a maintained program (options API: engine
//     knobs, magic default, and queue shape in one Config),
//  2. read endpoints — stats, relation dumps, pattern queries — all
//     answered from immutable snapshots,
//  3. group commit: concurrent updates coalesce into shared
//     maintainer passes; each response reports how many requests its
//     pass carried,
//  4. /v1/metrics: QPS, latency percentiles, queue and cache health.
//
// The same server runs standalone as `cmd/serve`; drive it with
// `cmd/loadgen` for sustained mixed traffic (see README, "Serving &
// load testing").
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

func main() {
	// --- 1. A server over maintained transitive closure.
	prog := parser.MustProgram(`
s(X,Y) :- E(X,Y).
s(X,Y) :- E(X,Z), s(Z,Y).
`)
	srv, err := server.NewWith(prog, graphs.Path(8).Database(), core.Inflationary, server.Config{
		Engine:     engine.Options{Planner: engine.On, Frontier: engine.On},
		QueueDepth: 64, // a full queue answers 429 + Retry-After
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// --- 2. Reads come from immutable snapshots.
	var stats server.StatsResponse
	getJSON(ts.URL+"/v1/stats", &stats)
	fmt.Printf("serving %s over %d relations; |s| = %d\n",
		stats.Semantics, len(stats.Relations), stats.Relations["s"])

	var q server.QueryResponse
	postJSON(ts.URL+"/v1/query", server.QueryRequest{
		Pred: "s", Args: []*string{strPtr("v0"), nil}, // s(v0, ?)
	}, &q)
	fmt.Printf("s(v0,_) has %d answers at generation %d\n", q.Count, q.Generation)

	// --- 3. Group commit: 16 concurrent updates, few maintainer passes.
	var wg sync.WaitGroup
	coalesced := make([]int, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var resp server.UpdateResponse
			postJSON(ts.URL+"/v1/update", server.UpdateRequest{
				Insert: []incr.Fact{{Pred: "E", Args: []string{fmt.Sprintf("n%d", w), "v0"}}},
			}, &resp)
			coalesced[w] = resp.Coalesced
		}(w)
	}
	wg.Wait()
	max := 0
	for _, c := range coalesced {
		if c > max {
			max = c
		}
	}
	fmt.Printf("16 concurrent updates committed; largest shared pass carried %d of them\n", max)

	// --- 4. The server watches itself.
	var m server.MetricsResponse
	getJSON(ts.URL+"/v1/metrics", &m)
	fmt.Printf("queue: %d updates in %d passes (mean batch %.1f, %d rejected)\n",
		m.Queue.Enqueued, m.Queue.Batches, m.Queue.MeanBatch, m.Queue.Rejected)
	fmt.Printf("update endpoint: %d requests, p99 %.0fµs\n",
		m.Endpoints["update"].Requests, m.Endpoints["update"].Latency.P99Us)
}

func strPtr(s string) *string { return &s }

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s (%s)", url, resp.Status, e.Error.Code)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
