// distance reproduces Proposition 2: the distance query
// D(x,y,x*,y*) — "is there a path x→y no longer than every path
// x*→y*?" — is computed by a DATALOG¬ program under inflationary
// semantics, while the *same rules* under stratified semantics compute
// the different query TC(x,y) ∧ ¬TC(x*,y*).  The query is also
// non-monotone, so no negation-free DATALOG program expresses it.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/graphs"
	"repro/internal/relation"
)

const distanceSrc = `
s1(X,Y) :- e(X,Y).
s1(X,Y) :- e(X,Z), s1(Z,Y).
s2(Xs,Ys) :- e(Xs,Ys).
s2(Xs,Ys) :- e(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- e(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- e(X,Z), s1(Z,Y), !s2(Xs,Ys).
`

func main() {
	prog, err := repro.ParseProgram(distanceSrc)
	if err != nil {
		log.Fatal(err)
	}
	// The path a→b→c→d plus a shortcut a→c.
	db, err := repro.ParseFacts("e(a,b). e(b,c). e(c,d). e(a,c).")
	if err != nil {
		log.Fatal(err)
	}

	infl, err := repro.Inflationary(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := repro.Stratified(prog, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("graph: a→b→c→d with shortcut a→c")
	fmt.Println("program (the paper's Proposition 2 rules):")
	fmt.Print(distanceSrc)

	// Probe a few interesting quadruples.
	lookup := func(res *repro.Result, names ...string) bool {
		t := make(relation.Tuple, len(names))
		for i, nm := range names {
			id, ok := res.Universe.Lookup(nm)
			if !ok {
				return false
			}
			t[i] = id
		}
		return res.State["s3"].Has(t)
	}
	fmt.Println("\nquery                           inflationary  stratified")
	for _, q := range [][4]string{
		{"a", "c", "a", "d"}, // dist(a,c)=1 ≤ dist(a,d)=2: D yes; TC∧¬TC: no (TC(a,d) holds)
		{"a", "d", "a", "b"}, // dist(a,d)=2 > dist(a,b)=1: D no;  TC∧¬TC: no
		{"a", "b", "d", "a"}, // no path d→a: both yes
		{"b", "d", "a", "c"}, // dist(b,d)=2 > dist(a,c)=1: D no; TC∧¬TC no
	} {
		fmt.Printf("D(%s,%s | %s,%s)%18v  %10v\n", q[0], q[1], q[2], q[3],
			lookup(infl, q[:]...), lookup(strat, q[:]...))
	}
	fmt.Println("\nthe two semantics disagree on D(a,c | a,d): inflationary answers the")
	fmt.Println("distance comparison, stratified answers TC(a,c) ∧ ¬TC(a,d).")

	// Cross-check inflationary against BFS on a random graph.
	g := graphs.Grid(3, 4)
	gdb := g.Database()
	src := `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(Xs,Ys) :- E(Xs,Ys).
s2(Xs,Ys) :- E(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).
`
	prog2, _ := repro.ParseProgram(src)
	res, err := repro.Inflationary(prog2, gdb)
	if err != nil {
		log.Fatal(err)
	}
	dist := g.Distances()
	mismatches := 0
	n := g.N()
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for xs := 0; xs < n; xs++ {
				for ys := 0; ys < n; ys++ {
					want := dist[x][y] > 0 && (dist[xs][ys] < 0 || dist[x][y] <= dist[xs][ys])
					id := func(v int) int {
						u, _ := res.Universe.Lookup(graphs.VertexName(v))
						return u
					}
					got := res.State["s3"].Has(relation.Tuple{id(x), id(y), id(xs), id(ys)})
					if got != want {
						mismatches++
					}
				}
			}
		}
	}
	fmt.Printf("\n3×4 grid cross-check against BFS: %d mismatches over %d quadruples\n",
		mismatches, n*n*n*n)
	fmt.Printf("inflationary stages: %d (= graph diameter + 1, within the |A|⁴ bound)\n",
		res.Stats.Rounds)
}
