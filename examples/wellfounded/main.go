// wellfounded contrasts the negation semantics the paper weighs
// against each other, on the classic win-move game
// win(X) ← move(X,Y), ¬win(Y): the well-founded semantics (the modern
// descendant of the debate, three-valued) leaves drawn positions
// undefined, the inflationary semantics (the paper's proposal) is
// total and two-valued, and Θ-fixpoints may not exist at all.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prog, err := repro.ParseProgram("win(X) :- move(X,Y), !win(Y).")
	if err != nil {
		log.Fatal(err)
	}

	// A game board: a path 1→2→3 (3 is lost), plus a 2-cycle a↔b
	// (both drawn), plus c→a entering the cycle.
	db, err := repro.ParseFacts(`
move(p1,p2). move(p2,p3).
move(a,b). move(b,a).
move(c,a).
`)
	if err != nil {
		log.Fatal(err)
	}

	wf, err := repro.WellFounded(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("well-founded model of win-move:")
	fmt.Println("  certainly won:  ", wf.State["win"].Format(wf.Universe))
	und := wf.WF.Undefined()
	fmt.Println("  drawn (undefined):", und["win"].Format(wf.Universe))
	fmt.Println("  total:", wf.WF.Total())

	infl, err := repro.Inflationary(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninflationary semantics (always total, the paper's proposal):")
	fmt.Println("  win =", infl.State["win"].Format(infl.Universe))

	rep, err := repro.Analyze(prog, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nΘ-fixpoint analysis: exists=%v count=%d unique=%v\n",
		rep.Exists, rep.Count, rep.Unique)

	fmt.Println("\nreading:")
	fmt.Println("  p2 is won (move to the lost p3); p1, p3 lost; a, b are drawn —")
	fmt.Println("  well-founded leaves them (and c, which can only enter the draw)")
	fmt.Println("  undefined, inflationary commits to a two-valued answer, and the")
	fmt.Println("  number of Θ-fixpoints depends on the board (possibly zero) —")
	fmt.Println("  which is exactly why the paper rejects 'fixpoint' as a semantics.")
}
