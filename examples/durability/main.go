// Durability walkthrough: the serve daemon's crash story, in-process.
//
// Four stops:
//  1. build a durable server (Config.DataDir): every committed batch
//     is appended to a write-ahead log before it is acknowledged,
//  2. apply updates and shut down cleanly — then reopen the same data
//     dir and watch recovery restore the checkpoint and replay the
//     WAL suffix into a ready maintainer, no fixpoint re-run,
//  3. bit-exactness: the recovered state and generation match what
//     was served before the restart,
//  4. the /v1/metrics durable block: WAL volume, checkpoint cadence,
//     and what recovery did.
//
// The standalone daemon does the same with
// `serve -data-dir DIR -checkpoint-every 256 -fsync always`; the
// adversarial version of this walkthrough is `make crashtest`, which
// uses kill -9 instead of a clean shutdown (see README, "Durability").
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "durability-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- 1. A durable server: reachability under stratified negation.
	prog := parser.MustProgram(`
s(X,Y) :- E(X,Y).
s(X,Y) :- E(X,Z), s(Z,Y).
`)
	cfg := server.Config{
		DataDir:           dir,
		Fsync:             durable.FsyncAlways, // acknowledged == on disk
		CheckpointBatches: 4,                   // checkpoint every 4 committed batches
	}
	srv, err := server.NewWith(prog, graphs.Path(6).Database(), core.Stratified, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boot 1: fresh dir %s — initial checkpoint written\n", dir)

	// --- 2. Updates are logged before they are acknowledged.
	for _, edge := range [][2]string{{"v5", "v0"}, {"x", "v0"}, {"v2", "x"}} {
		if _, _, err := srv.Update(
			[]incr.Fact{{Pred: "E", Args: []string{edge[0], edge[1]}}}, nil); err != nil {
			log.Fatal(err)
		}
	}
	if _, _, err := srv.Update(nil, []incr.Fact{{Pred: "E", Args: []string{"x", "v0"}}}); err != nil {
		log.Fatal(err)
	}
	before := srv.Snapshot()
	fmt.Printf("boot 1: gen %d, |s| = %d after 4 logged batches\n",
		before.Gen, before.Rels["s"].Len())
	srv.Close() // flushes and closes the WAL

	// --- 3. Reopen: recovery, not re-evaluation.
	srv2, err := server.NewWith(prog, graphs.Path(6).Database(), core.Stratified, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	after := srv2.Snapshot()
	fmt.Printf("boot 2: gen %d, |s| = %d — recovered, bit-exact: %v\n",
		after.Gen, after.Rels["s"].Len(),
		after.Gen == before.Gen && after.Rels["s"].Len() == before.Rels["s"].Len())

	// Updates keep flowing after recovery.
	if _, _, err := srv2.Update([]incr.Fact{{Pred: "E", Args: []string{"y", "v3"}}}, nil); err != nil {
		log.Fatal(err)
	}

	// --- 4. The durable metrics block.
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var met server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		log.Fatal(err)
	}
	d := met.Durable
	fmt.Printf("durable: fsync=%s wal_records=%d checkpoints=%d recovered_snapshot=%v replayed=%d in %.2fms\n",
		d.FsyncPolicy, d.WALRecords, d.Checkpoints,
		d.RecoveredSnapshot, d.RecoveryReplayedRecords, d.RecoveryDurMs)
}
