// Example query walks through demand-driven point queries: magic-set
// rewriting a program for a query's binding pattern, evaluating the
// rewritten program, and comparing against full materialization — the
// adornment mechanics, the left-vs-right recursion sensitivity, and
// the stratification fallback rule, end to end.
//
// Run with: go run ./examples/query
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/semantics"
)

func main() {
	// A 64-vertex path v0 → v1 → … → v63 and the left-recursive
	// transitive closure: the demand-friendly formulation, because the
	// recursive rule's first literal s(X,Z) carries the bound X.
	db := graphs.Path(64).Database()
	prog := parser.MustProgram(`
s(X,Y) :- E(X,Y).
s(X,Y) :- s(X,Z), E(Z,Y).
`)

	// The query s(v48, ?) has adornment "bf": first position bound to
	// the constant v48, second free.
	q := magic.MustParseQuery("s(v48, ?)")
	fmt.Printf("query %s, adornment %s\n\n", q, q.Adornment())

	// What the rewrite produces: adorned rules guarded by magic
	// predicates, a guard rule per adorned body literal, and a seed
	// rule fed from an extensional seed relation (so one rewrite
	// serves every constant with this adornment).
	rw, err := magic.Rewrite(prog, q.Pred, q.Pattern())
	check(err)
	fmt.Println("rewritten program:")
	fmt.Println(rw.Program)
	fmt.Println("report:")
	fmt.Println(rw.Report.Format())

	// Demand-driven evaluation vs full materialization + filter.
	start := time.Now()
	res, err := semantics.QueryLFP(prog, db, q, semantics.SemiNaive)
	check(err)
	durMagic := time.Since(start)

	start = time.Now()
	full, err := core.Eval(prog, db, core.LFP, semantics.SemiNaive)
	check(err)
	fullAns := semantics.FilterPattern(full.State["s"], q, full.Universe)
	durFull := time.Since(start)

	fmt.Printf("answers (magic): %s\n", res.Tuples.Format(res.Universe))
	fmt.Printf("answers (full):  %s\n", fullAns.Format(full.Universe))
	fmt.Printf("derived tuples: %d (magic) vs %d (full); %v vs %v\n\n",
		res.Stats.Tuples, full.Stats.Tuples, durMagic.Round(time.Microsecond), durFull.Round(time.Microsecond))

	// Stratified negation: s2 appears under negation, so a sound
	// rewrite must evaluate s2 (and everything it depends on) in full
	// — the report records that decision per predicate.
	strat := parser.MustProgram(`
s1(X,Y) :- E(X,Y).
s1(X,Y) :- s1(X,Z), E(Z,Y).
s2(X,Y) :- E(X,Y).
s2(X,Y) :- E(X,Z), s2(Z,Y).
far(X,Y) :- s1(X,Y), !s2(Y,X).
`)
	q2 := magic.MustParseQuery("far(v10, ?)")
	res2, err := semantics.QueryStratified(strat, db, q2, semantics.SemiNaive)
	check(err)
	fmt.Printf("stratified query %s: %d answers\n", q2, res2.Tuples.Len())
	fmt.Println(res2.Report.Format())

	// Unstratifiable programs are rejected — there is no magic around
	// recursion through negation; use inflationary or well-founded
	// full evaluation for those.
	win := parser.MustProgram("win(X) :- E(X,Y), !win(Y).")
	if _, err := semantics.QueryStratified(win, db, magic.MustParseQuery("win(?)"), semantics.SemiNaive); err != nil {
		fmt.Printf("win-move rejected as expected: %v\n", err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "example:", err)
		os.Exit(1)
	}
}
