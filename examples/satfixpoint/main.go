// satfixpoint walks Example 1 / Theorems 1–2 end to end: a CNF
// instance I becomes the database D(I) over (V, P, N); the fixed
// program π_SAT has a fixpoint on D(I) exactly when I is satisfiable;
// fixpoints are in bijection with satisfying assignments; and a unique
// satisfying assignment means a unique fixpoint (the US-complete
// problem of Theorem 2).
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/reductions"
	"repro/internal/workload"
)

func main() {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3): satisfiable.
	inst := &reductions.SATInstance{
		NumVars: 3,
		Clauses: [][]int{{1, 2}, {-1, 3}, {-2, -3}},
	}
	fmt.Println("instance: (x1∨x2) ∧ (¬x1∨x3) ∧ (¬x2∨¬x3)")

	db, err := reductions.SATDatabase(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nD(I) over the vocabulary (V, P, N):")
	fmt.Print(db)

	fmt.Println("\nπ_SAT (the paper's fixed program):")
	fmt.Print(reductions.PiSAT())

	in := engine.MustNew(reductions.PiSAT(), db)
	has, st, err := fixpoint.Exists(in, fixpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfixpoint exists: %v (instance satisfiable: %v)\n", has, inst.CountModels() > 0)
	if has {
		assign := reductions.AssignmentFromFixpoint(inst, db, st)
		fmt.Printf("assignment read from the fixpoint's S relation: %v\n", assign[1:])
		fmt.Printf("satisfies the instance: %v\n", inst.Eval(assign))
	}

	count, _, err := fixpoint.Count(in, fixpoint.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfixpoints: %d, satisfying assignments: %d (Theorem 2's bijection)\n",
		count, inst.CountModels())

	// A crafted unique-solution instance: unique fixpoint.
	uinst := workload.UniqueSAT(7, 6, 3)
	udb, err := reductions.SATDatabase(uinst)
	if err != nil {
		log.Fatal(err)
	}
	uin := engine.MustNew(reductions.PiSAT(), udb)
	unique, _, err := fixpoint.Unique(uin, fixpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrafted unique-SAT instance (%d vars): unique fixpoint = %v\n",
		uinst.NumVars, unique)

	// And an unsatisfiable instance: no fixpoint at all.
	bad := &reductions.SATInstance{NumVars: 1, Clauses: [][]int{{1}, {-1}}}
	bdb, _ := reductions.SATDatabase(bad)
	bin := engine.MustNew(reductions.PiSAT(), bdb)
	bhas, _, err := fixpoint.Exists(bin, fixpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nx ∧ ¬x: fixpoint exists = %v (no fixpoint semantics can answer here)\n", bhas)
}
