// Package repro is a reproduction of "Why Not Negation by Fixpoint?"
// by Phokion G. Kolaitis and Christos H. Papadimitriou (PODS 1988;
// JCSS 43:125–144, 1991): a DATALOG¬ engine with the paper's operator
// Θ, the four semantics it discusses (least fixpoint, stratified,
// inflationary, well-founded), and SAT-backed analyses of the paper's
// decision problems — fixpoint existence (NP, Theorem 1), unique
// fixpoints (US, Theorem 2), least fixpoints (Theorem 3), and the
// succinct NEXP construction (Theorem 4).
//
// This root package is a thin facade over the internal packages for
// quickstart use:
//
//	prog, _ := repro.ParseProgram("t(X) :- e(Y,X), !t(Y).")
//	db, _ := repro.ParseFacts("e(a,b). e(b,c).")
//	res, _ := repro.Inflationary(prog, db)
//	fmt.Println(res.State["t"].Format(res.Universe))
//
// The examples/ directory exercises the full API; cmd/bench
// regenerates every experiment table of EXPERIMENTS.md.
package repro

import (
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/incr"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Toggle is a tri-state option value: leave a feature at its default,
// or force it on or off for one call.  The zero value is the default.
type Toggle = engine.Toggle

// Toggle values for Options fields.
const (
	// Default follows the engine's default for the feature.
	Default Toggle = engine.ToggleDefault
	// On forces the feature on for this call.
	On Toggle = engine.On
	// Off forces the feature off for this call.
	Off Toggle = engine.Off
)

// Options configures one evaluation, query, maintainer, or server
// call.  The zero value keeps every engine default, so
// Options{} behaves exactly like the plain entry points.  Options
// replace the process-wide engine.SetDefault* knob pairs: instead of
// mutating global state around a call, the knobs travel with the call.
type Options struct {
	// Workers is the Θ evaluation worker-pool size (0 = the process
	// default, normally GOMAXPROCS).
	Workers int
	// Planner toggles cost-based join planning (Off = syntactic
	// literal order, the ablation baseline).
	Planner Toggle
	// Frontier toggles fused dedup-at-emit derivation (Off = the
	// derive+Diff oracle pipeline).
	Frontier Toggle
	// Sharding toggles intra-rule data-parallel sharding.
	Sharding Toggle
	// Magic toggles demand-driven evaluation for QueryWith: On/Default
	// answers via magic-set rewriting, Off materializes the full
	// fixpoint and filters (the differential oracle).
	Magic Toggle
	// Partitions is the K-way hash-partition count for semi-naive
	// fixpoint rounds (0 = the process default, normally 1 = an
	// unpartitioned run).  K > 1 splits each round's delta by head-tuple
	// hash across K engine partitions that exchange only cross-partition
	// tuples between rounds; results are bit-exact with K = 1.
	Partitions int
	// ExchangeFilter toggles the Bloom prefilter on the cross-partition
	// exchange path (Default/On = filtered when frontier evaluation is
	// active, Off = every emission takes the exact membership probe).
	ExchangeFilter Toggle
	// FrontierFilter toggles the same Bloom prefilter on the
	// unpartitioned frontier path: the fixpoint loops keep a summary of
	// the accumulated state and a definitive "absent" answer skips the
	// exact dedup probe at emit time (Off = exact probes only).
	FrontierFilter Toggle
}

// engineOpts converts the engine-facing subset of the options.
func (o Options) engineOpts() engine.Options {
	return engine.Options{
		Workers:        o.Workers,
		Planner:        o.Planner,
		Frontier:       o.Frontier,
		Sharding:       o.Sharding,
		Partitions:     o.Partitions,
		ExchangeFilter: o.ExchangeFilter,
		FrontierFilter: o.FrontierFilter,
	}
}

// EvalWith evaluates prog on db under sem with per-call options — the
// options-API entry point behind Inflationary, LeastFixpoint,
// Stratified, and WellFounded.
func EvalWith(prog *Program, db *Database, sem Semantics, opt Options) (*Result, error) {
	return core.EvalOpts(prog, db, sem, semantics.SemiNaive, opt.engineOpts())
}

// MaintainWith is Maintain with per-call options applied to the
// initial evaluation and every maintenance pass.
func MaintainWith(prog *Program, db *Database, sem Semantics, opt Options) (*Maintainer, error) {
	return incr.NewWith(prog, db, sem, opt.engineOpts())
}

// QueryWith is Query with per-call options.  Options.Magic selects the
// evaluation strategy: On or Default answer demand-driven (magic-set
// rewriting), Off materializes the full fixpoint and filters — the
// oracle the demand-driven path is differential-tested against.
func QueryWith(prog *Program, db *Database, query string, sem Semantics, opt Options) (*QueryResult, error) {
	q, err := magic.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	if opt.Magic == Off {
		return core.QueryFullOpts(prog, db, q, sem, semantics.SemiNaive, opt.engineOpts())
	}
	return core.QueryOpts(prog, db, q, sem, semantics.SemiNaive, opt.engineOpts())
}

// Program is a DATALOG¬ program.
type Program = ast.Program

// Database is a finite database D = (A, R₁, …, Rₗ).
type Database = relation.Database

// Result is an evaluation result.
type Result = core.EvalResult

// Report is a fixpoint-structure analysis.
type Report = core.Report

// ParseProgram parses DATALOG¬ source text, e.g.
// "t(X) :- e(Y,X), !t(Y).".
func ParseProgram(src string) (*Program, error) { return parser.Program(src) }

// ParseFacts parses a fact file, e.g. "e(a,b). e(b,c).".
func ParseFacts(src string) (*Database, error) { return parser.Facts(src) }

// Inflationary evaluates prog on db under the paper's inflationary
// semantics (Section 4): the inductive fixpoint of S ↦ S ∪ Θ(S).
func Inflationary(prog *Program, db *Database) (*Result, error) {
	return core.Eval(prog, db, core.Inflationary, semantics.SemiNaive)
}

// LeastFixpoint evaluates a positive or semipositive program under the
// standard least-fixpoint semantics.
func LeastFixpoint(prog *Program, db *Database) (*Result, error) {
	return core.Eval(prog, db, core.LFP, semantics.SemiNaive)
}

// Stratified evaluates a stratifiable program under the stratified
// semantics.
func Stratified(prog *Program, db *Database) (*Result, error) {
	return core.Eval(prog, db, core.Stratified, semantics.SemiNaive)
}

// WellFounded evaluates prog under the well-founded semantics; the
// result's State holds the certainly-true facts and Result.WF the full
// three-valued model.
func WellFounded(prog *Program, db *Database) (*Result, error) {
	return core.Eval(prog, db, core.WellFounded, semantics.SemiNaive)
}

// Analyze reports the fixpoint structure of (prog, db): existence,
// count, uniqueness, and (with AnalyzeOptions.WithLeast via the core
// package) least-fixpoint existence.
func Analyze(prog *Program, db *Database) (*Report, error) {
	return core.Analyze(prog, db, core.AnalyzeOptions{})
}

// Semantics selects an evaluation semantics for Maintain.
type Semantics = core.Semantics

// The four semantics, for Maintain.
const (
	SemanticsInflationary Semantics = core.Inflationary
	SemanticsLFP          Semantics = core.LFP
	SemanticsStratified   Semantics = core.Stratified
	SemanticsWellFounded  Semantics = core.WellFounded
)

// Maintainer keeps the materialized result of a program exact under
// EDB fact inserts and deletes (see internal/incr): counting/DRed
// maintenance for stratified strata, stage-log replay for general
// inflationary programs.
type Maintainer = incr.Maintainer

// Fact is one EDB tuple, named by constants, for Maintainer updates.
type Fact = incr.Fact

// Maintain evaluates prog on a private copy of db under sem and
// returns a maintainer ready for incremental updates.
func Maintain(prog *Program, db *Database, sem Semantics) (*Maintainer, error) {
	return incr.New(prog, db, sem)
}

// QueryResult is the outcome of a demand-driven point query.
type QueryResult = semantics.QueryResult

// Query answers a single query atom — e.g. "s(a, ?)", constants bound,
// "?" free — demand-driven: the program is magic-set rewritten for the
// query's binding pattern (see internal/magic) and only the tuples the
// query can reach are derived, instead of materializing the whole
// fixpoint.  Supported semantics: SemanticsLFP, SemanticsStratified,
// and SemanticsInflationary when it coincides with LFP (positive or
// semipositive programs).
func Query(prog *Program, db *Database, query string, sem Semantics) (*QueryResult, error) {
	q, err := magic.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return core.Query(prog, db, q, sem, semantics.SemiNaive)
}
