// Command datalog evaluates a DATALOG¬ program on a fact file under a
// chosen semantics and prints the computed relations.
//
// Usage:
//
//	datalog -program tc.dl -facts graph.dl [-semantics inflationary] [-mode seminaive] [-stats] [-explain]
//
// Semantics: inflationary (default, the paper's Section 4 proposal),
// lfp (positive/semipositive programs), stratified, wellfounded.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/semantics"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the DATALOG¬ program")
		factsPath   = flag.String("facts", "", "path to the fact file")
		semName     = flag.String("semantics", "inflationary", "inflationary|lfp|stratified|wellfounded")
		modeName    = flag.String("mode", "seminaive", "seminaive|naive stage evaluation")
		stats       = flag.Bool("stats", false, "print evaluation statistics")
		workers     = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner     = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		frontier    = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		shard       = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
		explain     = flag.Bool("explain", false, "print per-rule evaluation plans at the computed fixpoint")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultSharding(*shard)
	if *programPath == "" || *factsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: datalog -program FILE -facts FILE [-semantics NAME]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prog, err := parser.ProgramFile(*programPath)
	if err != nil {
		fatal(err)
	}
	db, err := parser.FactsFile(*factsPath)
	if err != nil {
		fatal(err)
	}
	sem, err := core.ParseSemantics(*semName)
	if err != nil {
		fatal(err)
	}
	mode := semantics.SemiNaive
	switch *modeName {
	case "seminaive":
	case "naive":
		mode = semantics.Naive
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}

	res, err := core.Eval(prog, db, sem, mode)
	if err != nil {
		fatal(err)
	}
	if *explain {
		// Plans against the computed relations: the sizes (and hence
		// join orders) most evaluation rounds saw.  The instance is
		// built on a fresh clone, like core.Eval's own.
		in, err := engine.New(prog, db.Clone())
		if err != nil {
			fatal(err)
		}
		fmt.Println("% evaluation plans at the computed fixpoint:")
		in.Explain(os.Stdout, res.State)
	}
	fmt.Printf("%% class: %v, semantics: %v\n", res.Class, res.Semantics)
	for _, pred := range res.State.Preds() {
		fmt.Printf("%s/%d = %s\n", pred, res.State[pred].Arity(), res.State[pred].Format(res.Universe))
	}
	if res.WF != nil && !res.WF.Total() {
		fmt.Println("% undefined atoms (three-valued model):")
		und := res.WF.Undefined()
		for _, pred := range und.Preds() {
			if und[pred].Len() > 0 {
				fmt.Printf("%% undef %s = %s\n", pred, und[pred].Format(res.Universe))
			}
		}
	}
	if *stats {
		fmt.Printf("%% rounds=%d tuples=%d maxDelta=%d\n",
			res.Stats.Rounds, res.Stats.Tuples, res.Stats.MaxDeltaTuples)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datalog:", err)
	os.Exit(1)
}
