// Command datalog evaluates a DATALOG¬ program on a fact file under a
// chosen semantics and prints the computed relations.
//
// Usage:
//
//	datalog -program tc.dl -facts graph.dl [-semantics inflationary] [-mode seminaive] [-stats] [-explain]
//	datalog -program tc.dl -facts graph.dl -query 's(a, ?)' [-magic=false]
//
// Semantics: inflationary (default, the paper's Section 4 proposal),
// lfp (positive/semipositive programs), stratified, wellfounded.
//
// With -query the program is not materialized: the query atom
// (constants bound, "?" free) is answered demand-driven by magic-set
// rewriting — only the tuples the query can reach are derived.
// -magic=false answers the same query from a full materialization
// instead (the oracle the magic path is tested against); -explain
// prints the rewrite report.  Point queries require lfp or stratified
// semantics (inflationary is accepted when it coincides with lfp).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the DATALOG¬ program")
		factsPath   = flag.String("facts", "", "path to the fact file")
		semName     = flag.String("semantics", "inflationary", "inflationary|lfp|stratified|wellfounded")
		modeName    = flag.String("mode", "seminaive", "seminaive|naive stage evaluation")
		stats       = flag.Bool("stats", false, "print evaluation statistics")
		workers     = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner     = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		frontier    = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		ffilter     = flag.Bool("frontier-filter", true, "Bloom-prefiltered frontier dedup probes (false = exact probes only)")
		shard       = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
		explain     = flag.Bool("explain", false, "print per-rule evaluation plans at the computed fixpoint")
		query       = flag.String("query", "", "answer one query atom, e.g. 's(a, ?)' ('?' marks free positions)")
		magicOn     = flag.Bool("magic", true, "with -query: demand-driven magic-set evaluation (false = full materialization + filter)")
		partitions  = flag.Int("partitions", 1, "K-way hash-partitioned evaluation with delta exchange (1 = unpartitioned)")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultFrontierFilter(*ffilter)
	engine.SetDefaultSharding(*shard)
	engine.SetDefaultPartitions(*partitions)
	if *programPath == "" || *factsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: datalog -program FILE -facts FILE [-semantics NAME]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prog, err := parser.ProgramFile(*programPath)
	if err != nil {
		fatal(err)
	}
	db, err := parser.FactsFile(*factsPath)
	if err != nil {
		fatal(err)
	}
	sem, err := core.ParseSemantics(*semName)
	if err != nil {
		fatal(err)
	}
	mode := semantics.SemiNaive
	switch *modeName {
	case "seminaive":
	case "naive":
		mode = semantics.Naive
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}

	if *query != "" {
		runQuery(prog, db, *query, sem, mode, *magicOn, *explain, *stats)
		return
	}

	res, err := core.Eval(prog, db, sem, mode)
	if err != nil {
		fatal(err)
	}
	if *explain {
		// Plans against the computed relations: the sizes (and hence
		// join orders) most evaluation rounds saw.  The instance is
		// built on a fresh clone, like core.Eval's own.
		in, err := engine.New(prog, db.Clone())
		if err != nil {
			fatal(err)
		}
		fmt.Println("% evaluation plans at the computed fixpoint:")
		in.Explain(os.Stdout, res.State)
	}
	fmt.Printf("%% class: %v, semantics: %v\n", res.Class, res.Semantics)
	for _, pred := range res.State.Preds() {
		fmt.Printf("%s/%d = %s\n", pred, res.State[pred].Arity(), res.State[pred].Format(res.Universe))
	}
	if res.WF != nil && !res.WF.Total() {
		fmt.Println("% undefined atoms (three-valued model):")
		und := res.WF.Undefined()
		for _, pred := range und.Preds() {
			if und[pred].Len() > 0 {
				fmt.Printf("%% undef %s = %s\n", pred, und[pred].Format(res.Universe))
			}
		}
	}
	if *stats {
		fmt.Printf("%% rounds=%d tuples=%d maxDelta=%d\n",
			res.Stats.Rounds, res.Stats.Tuples, res.Stats.MaxDeltaTuples)
	}
}

// runQuery answers one query atom, demand-driven or via the full
// materialization oracle.
func runQuery(prog *ast.Program, db *relation.Database, src string, sem core.Semantics, mode semantics.Mode, magicOn, explain, stats bool) {
	q, err := magic.ParseQuery(src)
	if err != nil {
		fatal(err)
	}
	// Validate the query against the program up front, so the full
	// oracle path rejects exactly what the magic path rejects.
	arities, err := prog.Validate()
	if err != nil {
		fatal(err)
	}
	ar, known := arities[q.Pred]
	if !known {
		fatal(fmt.Errorf("query predicate %s does not appear in the program", q.Pred))
	}
	if len(q.Args) != ar {
		fatal(fmt.Errorf("query %s has %d args, predicate has arity %d", q.Pred, len(q.Args), ar))
	}
	if _, ok := core.QueryStrategy(sem, prog.Classify()); !ok {
		fatal(fmt.Errorf("point queries require lfp, stratified, or coinciding inflationary semantics (program is %v; try -semantics stratified)", prog.Classify()))
	}

	start := time.Now()
	var res *semantics.QueryResult
	if magicOn {
		res, err = core.Query(prog, db, q, sem, mode)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err = core.QueryFull(prog, db, q, sem, mode)
		if err != nil {
			fatal(err)
		}
	}
	dur := time.Since(start)

	if explain && res.Report != nil {
		fmt.Print("% rewrite report:\n")
		for _, line := range strings.Split(strings.TrimRight(res.Report.Format(), "\n"), "\n") {
			fmt.Printf("%%   %s\n", line)
		}
	}
	fmt.Printf("%% query %s (%s)\n", q, map[bool]string{true: "magic", false: "full"}[magicOn])
	fmt.Printf("%s = %s\n", q.Pred, res.Tuples.Format(res.Universe))
	if stats {
		fmt.Printf("%% matched=%d derived=%d rounds=%d in %v\n",
			res.Tuples.Len(), res.Stats.Tuples, res.Stats.Rounds, dur.Round(time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datalog:", err)
	os.Exit(1)
}
