// Command fixpoint analyzes the fixpoint structure of (π, D): the
// decision problems of Section 3 of the paper on concrete inputs.
//
// Usage:
//
//	fixpoint -program pi1.dl -facts cycle4.dl [-count 0] [-least] [-enumerate 4]
//
// Prints existence (Theorem 1's NP problem), the number of fixpoints,
// uniqueness (Theorem 2's US problem), optionally the least-fixpoint
// criterion of Theorem 3, and optionally the first fixpoints.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/parser"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the DATALOG¬ program")
		factsPath   = flag.String("facts", "", "path to the fact file")
		countLimit  = flag.Int("count", 0, "cap on fixpoint counting (0 = exact)")
		withLeast   = flag.Bool("least", false, "run the Theorem 3 least-fixpoint analysis")
		enumerate   = flag.Int("enumerate", 0, "print up to N fixpoints")
		stable      = flag.Bool("stable", false, "also enumerate stable models (answer sets)")
		workers     = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner     = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		frontier    = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		ffilter     = flag.Bool("frontier-filter", true, "Bloom-prefiltered frontier dedup probes (false = exact probes only)")
		shard       = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
		partitions  = flag.Int("partitions", 1, "K-way hash-partitioned evaluation with delta exchange (1 = unpartitioned)")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultFrontierFilter(*ffilter)
	engine.SetDefaultSharding(*shard)
	engine.SetDefaultPartitions(*partitions)
	if *programPath == "" || *factsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: fixpoint -program FILE -facts FILE [-count N] [-least] [-enumerate N]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	prog, err := parser.ProgramFile(*programPath)
	if err != nil {
		fatal(err)
	}
	db, err := parser.FactsFile(*factsPath)
	if err != nil {
		fatal(err)
	}
	in, err := engine.New(prog, db)
	if err != nil {
		fatal(err)
	}
	opt := fixpoint.Options{}

	has, example, err := fixpoint.Exists(in, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("class:    %v\n", prog.Classify())
	fmt.Printf("exists:   %v\n", has)
	count, exact, err := fixpoint.Count(in, opt, *countLimit)
	if err != nil {
		fatal(err)
	}
	suffix := ""
	if !exact {
		suffix = "+ (limit reached)"
	}
	fmt.Printf("count:    %d%s\n", count, suffix)
	fmt.Printf("unique:   %v\n", exact && count == 1)

	if *withLeast {
		res, err := fixpoint.Least(in, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("least:    %v\n", res.Exists)
		if res.Exists {
			fmt.Printf("least fixpoint:\n%s", indent(res.State.Format(in.Universe())))
		} else if res.NumFixpoints > 0 {
			fmt.Printf("intersection of all %d fixpoints (not itself a fixpoint):\n%s",
				res.NumFixpoints, indent(res.Intersection.Format(in.Universe())))
		}
	}

	if *stable {
		n, complete, err := fixpoint.StableModels(in, opt, 0, nil)
		if err != nil {
			fatal(err)
		}
		suffix := ""
		if !complete {
			suffix = "+ (limit reached)"
		}
		fmt.Printf("stable:   %d%s\n", n, suffix)
	}

	if has && *enumerate > 0 {
		fmt.Printf("first %d fixpoint(s):\n", *enumerate)
		i := 0
		_, _, err := fixpoint.Enumerate(in, opt, *enumerate, func(s engine.State) bool {
			i++
			fmt.Printf("--- fixpoint %d ---\n%s", i, indent(s.Format(in.Universe())))
			return true
		})
		if err != nil {
			fatal(err)
		}
	} else if has {
		fmt.Printf("example fixpoint:\n%s", indent(example.Format(in.Universe())))
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "  " + s[start:] + "\n"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fixpoint:", err)
	os.Exit(1)
}
