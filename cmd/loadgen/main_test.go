package main

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/server"
)

func TestFlags(t *testing.T) {
	var opts options
	fs := newFlags("loadgen", &opts)
	if err := fs.Parse([]string{"-conns", "4", "-duration", "2s", "-qps", "100", "-mix", "read=1"}); err != nil {
		t.Fatal(err)
	}
	if opts.conns != 4 || opts.duration != 2*time.Second || opts.qps != 100 || opts.mix != "read=1" {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.addr == "" || opts.seed == 0 {
		t.Fatalf("defaults missing: %+v", opts)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("read=40, query=40,update=20")
	if err != nil {
		t.Fatal(err)
	}
	if w["read"] != 40 || w["query"] != 40 || w["update"] != 20 {
		t.Fatalf("weights = %v", w)
	}
	for _, bad := range []string{"", "read", "read=x", "read=-1", "write=10", "read=0,query=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestEndToEnd drives a real in-process server: discovery, a short
// mixed-traffic run across all three classes, and the bench-format
// report — every request must succeed and every class must appear.
func TestEndToEnd(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	srv, err := server.New(prog, graphs.Path(8).Database(), core.Inflationary)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	opts := options{addr: ts.URL, conns: 3, seed: 1}
	tg, err := discover(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if tg.queryPred != "s" || tg.updatePred != "E" || tg.queryArity != 2 || len(tg.consts) == 0 {
		t.Fatalf("discovery = %+v", tg)
	}

	weights := map[string]int{"read": 2, "query": 2, "update": 1}
	recs := map[string]*classRec{}
	for _, c := range classes {
		recs[c] = &classRec{}
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	worker(0, &opts, weights, tg, recs, deadline)
	for _, c := range classes {
		if recs[c].count.Load() == 0 {
			t.Errorf("class %s issued no requests", c)
		}
		if e := recs[c].errors.Load(); e != 0 {
			t.Errorf("class %s saw %d errors", c, e)
		}
	}

	var buf bytes.Buffer
	report(&buf, &opts, recs, 250*time.Millisecond)
	out := buf.String()
	for _, want := range []string{
		"goos:", "pkg: repro/cmd/loadgen",
		"BenchmarkServeLoad/read-3", "BenchmarkServeLoad/query-3",
		"BenchmarkServeLoad/update-3", "BenchmarkServeLoad/total-3",
		"ns/op", "qps", "p99-us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}

	// A paced run exercises the qps ticker path.
	opts.qps = 1000
	worker(1, &opts, weights, tg, recs, time.Now().Add(50*time.Millisecond))
}

// TestBuildDeckExactMix: the schedule realizes the weights exactly.
func TestBuildDeckExactMix(t *testing.T) {
	weights := map[string]int{"read": 4, "query": 3, "update": 2}
	deck := buildDeck(weights, rand.New(rand.NewSource(1)))
	if len(deck) != 9 {
		t.Fatalf("deck length %d, want 9", len(deck))
	}
	counts := map[string]int{}
	for _, c := range deck {
		counts[c]++
	}
	for c, w := range weights {
		if counts[c] != w {
			t.Errorf("class %s appears %d times, want %d", c, counts[c], w)
		}
	}
}
