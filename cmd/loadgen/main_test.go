package main

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/server"
)

func TestFlags(t *testing.T) {
	var opts options
	fs := newFlags("loadgen", &opts)
	if err := fs.Parse([]string{"-conns", "4", "-duration", "2s", "-qps", "100", "-mix", "read=1"}); err != nil {
		t.Fatal(err)
	}
	if opts.conns != 4 || opts.duration != 2*time.Second || opts.qps != 100 || opts.mix != "read=1" {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.addr == "" || opts.seed == 0 {
		t.Fatalf("defaults missing: %+v", opts)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("read=40, query=40,update=20")
	if err != nil {
		t.Fatal(err)
	}
	if w["read"] != 40 || w["query"] != 40 || w["update"] != 20 {
		t.Fatalf("weights = %v", w)
	}
	for _, bad := range []string{"", "read", "read=x", "read=-1", "write=10", "read=0,query=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestEndToEnd drives a real in-process server: discovery, a short
// mixed-traffic run across all three classes, and the bench-format
// report — every request must succeed and every class must appear.
func TestEndToEnd(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	srv, err := server.New(prog, graphs.Path(8).Database(), core.Inflationary)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	opts := options{addr: ts.URL, conns: 3, seed: 1}
	tg, err := discover(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if tg.queryPred != "s" || tg.updatePred != "E" || tg.queryArity != 2 || len(tg.consts) == 0 {
		t.Fatalf("discovery = %+v", tg)
	}

	weights := map[string]int{"read": 2, "query": 2, "update": 1}
	recs := map[string]*classRec{}
	for _, c := range classes {
		recs[c] = &classRec{}
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	worker(0, &opts, weights, tg, recs, deadline)
	for _, c := range classes {
		if recs[c].count.Load() == 0 {
			t.Errorf("class %s issued no requests", c)
		}
		if e := recs[c].errors.Load(); e != 0 {
			t.Errorf("class %s saw %d errors", c, e)
		}
	}

	var buf bytes.Buffer
	report(&buf, &opts, recs, 250*time.Millisecond)
	out := buf.String()
	for _, want := range []string{
		"goos:", "pkg: repro/cmd/loadgen",
		"BenchmarkServeLoad/read-3", "BenchmarkServeLoad/query-3",
		"BenchmarkServeLoad/update-3", "BenchmarkServeLoad/total-3",
		"ns/op", "qps", "p99-us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}

	// A paced run exercises the qps ticker path.
	opts.qps = 1000
	worker(1, &opts, weights, tg, recs, time.Now().Add(50*time.Millisecond))
}

// TestBackoff pins the retry wait: jittered into [base/2, base],
// exponential without a server hint, honoring Retry-After when sent,
// always capped at 2s.
func TestBackoff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 10; attempt++ {
		base := 50 * time.Millisecond << min(attempt, 5)
		if base > 2*time.Second {
			base = 2 * time.Second
		}
		for i := 0; i < 50; i++ {
			if w := backoff(attempt, "", rng); w < base/2 || w > base {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, w, base/2, base)
			}
		}
	}
	if w := backoff(0, "1", rng); w < 500*time.Millisecond || w > time.Second {
		t.Errorf("Retry-After: 1 gave %v, want in [500ms, 1s]", w)
	}
	if w := backoff(0, "60", rng); w > 2*time.Second {
		t.Errorf("Retry-After: 60 gave %v, want capped at 2s", w)
	}
	if w := backoff(0, "soon", rng); w > 50*time.Millisecond {
		t.Errorf("garbage Retry-After gave %v, want the 50ms fallback", w)
	}
}

// TestRetryOn429: a 429 answer is retried after the backoff and the
// retry is counted; the request only lands in `rejected` once the
// retry budget is spent.
func TestRetryOn429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	opts := options{addr: ts.URL, conns: 1, seed: 1, retries: 3}
	recs := map[string]*classRec{}
	for _, c := range classes {
		recs[c] = &classRec{}
	}
	worker(0, &opts, map[string]int{"read": 1}, &target{}, recs, time.Now().Add(400*time.Millisecond))
	r := recs["read"]
	if r.retries.Load() < 2 {
		t.Errorf("retries = %d, want >= 2 (two 429s before the first success)", r.retries.Load())
	}
	if r.rejected.Load() != 0 {
		t.Errorf("rejected = %d, want 0: the retries absorbed every 429", r.rejected.Load())
	}
	if r.errors.Load() != 0 {
		t.Errorf("errors = %d, want 0", r.errors.Load())
	}

	// With no retry budget the same traffic records rejections.
	hits.Store(0)
	opts.retries = 0
	norec := map[string]*classRec{}
	for _, c := range classes {
		norec[c] = &classRec{}
	}
	worker(0, &opts, map[string]int{"read": 1}, &target{}, norec, time.Now().Add(50*time.Millisecond))
	if norec["read"].rejected.Load() == 0 {
		t.Error("zero-retry run recorded no rejections")
	}
}

// TestBuildDeckExactMix: the schedule realizes the weights exactly.
func TestBuildDeckExactMix(t *testing.T) {
	weights := map[string]int{"read": 4, "query": 3, "update": 2}
	deck := buildDeck(weights, rand.New(rand.NewSource(1)))
	if len(deck) != 9 {
		t.Fatalf("deck length %d, want 9", len(deck))
	}
	counts := map[string]int{}
	for _, c := range deck {
		counts[c]++
	}
	for c, w := range weights {
		if counts[c] != w {
			t.Errorf("class %s appears %d times, want %d", c, counts[c], w)
		}
	}
}
