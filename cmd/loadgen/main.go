// Command loadgen drives mixed traffic at a running serve daemon and
// reports client-side throughput and latency percentiles.
//
// It opens -conns worker connections, each issuing a -mix-weighted
// stream of requests for -duration (optionally paced to an aggregate
// -qps target):
//
//	read    GET  /v1/stats            snapshot-pointer read
//	query   POST /v1/query            one bound column, rest wildcards
//	update  POST /v1/update           toggle a worker-private EDB edge
//
// Query constants are discovered from the server itself (the update
// predicate's tuples), so loadgen needs no knowledge of the data set.
// Results print in `go test -bench` format — one Benchmark line per
// traffic class plus one for the server's group-commit queue taken
// from a final /v1/metrics scrape — so the existing scripts/benchjson
// turns a run into BENCH_SERVE.json:
//
//	loadgen -addr http://localhost:8090 -conns 16 -duration 10s | go run ./scripts/benchjson
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

type options struct {
	addr       string
	conns      int
	duration   time.Duration
	qps        float64
	mix        string
	queryPred  string
	updatePred string
	seed       int64
	retries    int
}

func newFlags(name string, opts *options) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.StringVar(&opts.addr, "addr", "http://localhost:8090", "base URL of the serve daemon")
	fs.IntVar(&opts.conns, "conns", 16, "concurrent worker connections")
	fs.DurationVar(&opts.duration, "duration", 10*time.Second, "how long to drive traffic")
	fs.Float64Var(&opts.qps, "qps", 0, "aggregate request-rate target (0 = unthrottled)")
	fs.StringVar(&opts.mix, "mix", "read=40,query=40,update=20", "traffic mix weights")
	fs.StringVar(&opts.queryPred, "query-pred", "", "predicate for /v1/query (default: largest relation)")
	fs.StringVar(&opts.updatePred, "update-pred", "", "EDB predicate for /v1/update (default: smallest relation)")
	fs.Int64Var(&opts.seed, "seed", 1, "RNG seed for mix scheduling and constant choice")
	fs.IntVar(&opts.retries, "retries", 3, "retries per 429-rejected request, honoring Retry-After with capped jittered backoff (0 = give up immediately)")
	return fs
}

// Traffic classes, in report order.
var classes = []string{"read", "query", "update"}

// classRec accumulates one class's client-side observations.
type classRec struct {
	count    metrics.Counter
	errors   metrics.Counter
	rejected metrics.Counter // 429s still rejected after retries ran out
	retries  metrics.Counter // backoff-and-retry attempts after a 429
	lat      metrics.Histogram
}

func main() {
	var opts options
	fs := newFlags("loadgen", &opts)
	fs.Parse(os.Args[1:])

	weights, err := parseMix(opts.mix)
	if err != nil {
		fatal(err)
	}
	target, err := discover(&opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d conns for %v against %s; query=%s/%d update=%s/%d, %d constants\n",
		opts.conns, opts.duration, opts.addr,
		target.queryPred, target.queryArity, target.updatePred, target.updateArity, len(target.consts))

	recs := make(map[string]*classRec, len(classes))
	for _, c := range classes {
		recs[c] = &classRec{}
	}
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(opts.duration)
	for w := 0; w < opts.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(w, &opts, weights, target, recs, deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, &opts, recs, elapsed)
}

// target is what discovery learned about the served program.
type target struct {
	queryPred   string
	queryArity  int
	updatePred  string
	updateArity int
	consts      []string
}

// discover asks /v1/stats for the relation map and /v1/relation for
// arities and a constant pool, filling any predicates the flags left
// unset: queries go to the largest relation (the interesting IDB),
// updates to the smallest (typically the EDB input).
func discover(opts *options) (*target, error) {
	var stats struct {
		Relations map[string]int `json:"relations"`
	}
	if err := getJSON(opts.addr+"/v1/stats", &stats); err != nil {
		return nil, fmt.Errorf("discovering relations: %w", err)
	}
	if len(stats.Relations) == 0 {
		return nil, fmt.Errorf("server at %s has no relations", opts.addr)
	}
	t := &target{queryPred: opts.queryPred, updatePred: opts.updatePred}
	for pred, size := range stats.Relations {
		if opts.queryPred == "" && (t.queryPred == "" || size > stats.Relations[t.queryPred]) {
			t.queryPred = pred
		}
		if opts.updatePred == "" && (t.updatePred == "" || size < stats.Relations[t.updatePred]) {
			t.updatePred = pred
		}
	}
	var rel struct {
		Arity  int        `json:"arity"`
		Tuples [][]string `json:"tuples"`
	}
	if err := getJSON(opts.addr+"/v1/relation?pred="+t.updatePred, &rel); err != nil {
		return nil, fmt.Errorf("reading %s: %w", t.updatePred, err)
	}
	t.updateArity = rel.Arity
	seen := map[string]bool{}
	for _, tup := range rel.Tuples {
		for _, c := range tup {
			if !seen[c] {
				seen[c] = true
				t.consts = append(t.consts, c)
			}
		}
	}
	if len(t.consts) == 0 {
		t.consts = []string{"lg_seed"}
	}
	if err := getJSON(opts.addr+"/v1/relation?pred="+t.queryPred, &rel); err != nil {
		return nil, fmt.Errorf("reading %s: %w", t.queryPred, err)
	}
	t.queryArity = rel.Arity
	return t, nil
}

// worker issues one connection's share of the traffic until deadline.
func worker(w int, opts *options, weights map[string]int, tg *target, recs map[string]*classRec, deadline time.Time) {
	rng := rand.New(rand.NewSource(opts.seed + int64(w)))
	deck := buildDeck(weights, rng)
	client := &http.Client{Timeout: 30 * time.Second}

	// Aggregate pacing split evenly across connections.
	var tick *time.Ticker
	if opts.qps > 0 {
		tick = time.NewTicker(time.Duration(float64(opts.conns) / opts.qps * float64(time.Second)))
		defer tick.Stop()
	}

	inserted := false // state of this worker's private update edge
	for i := 0; time.Now().Before(deadline); i++ {
		if tick != nil {
			select {
			case <-tick.C:
			case <-time.After(time.Until(deadline)):
				return
			}
		}
		class := deck[i%len(deck)]
		rec := recs[class]
		start := time.Now()
		status, retryAfter, err := doRequest(client, opts.addr, class, w, rng, tg, &inserted)
		// A 429 is admission control, not failure: back off as the
		// server asked (Retry-After) and retry, up to -retries times.
		for attempt := 0; err == nil && status == http.StatusTooManyRequests && attempt < opts.retries; attempt++ {
			wait := backoff(attempt, retryAfter, rng)
			if time.Now().Add(wait).After(deadline) {
				break
			}
			time.Sleep(wait)
			rec.retries.Inc()
			status, retryAfter, err = doRequest(client, opts.addr, class, w, rng, tg, &inserted)
		}
		rec.lat.Observe(time.Since(start))
		rec.count.Inc()
		switch {
		case err != nil:
			rec.errors.Inc()
		case status == http.StatusTooManyRequests:
			rec.rejected.Inc()
		case status >= 400:
			rec.errors.Inc()
		}
	}
}

// backoff picks the wait before retrying a 429: the server's
// Retry-After if it sent one, otherwise 50ms doubled per attempt; both
// capped at 2s and jittered into [wait/2, wait] so synchronized
// retriers spread out instead of re-colliding.
func backoff(attempt int, retryAfter string, rng *rand.Rand) time.Duration {
	wait := 50 * time.Millisecond << min(attempt, 5)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	if maxWait := 2 * time.Second; wait > maxWait {
		wait = maxWait
	}
	half := wait / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// buildDeck expands the weights into a shuffled schedule, so each
// worker realizes the mix exactly over every len(deck) requests.
func buildDeck(weights map[string]int, rng *rand.Rand) []string {
	var deck []string
	for _, c := range classes {
		for i := 0; i < weights[c]; i++ {
			deck = append(deck, c)
		}
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

func doRequest(client *http.Client, addr, class string, w int, rng *rand.Rand, tg *target, inserted *bool) (int, string, error) {
	switch class {
	case "read":
		return do(client, http.MethodGet, addr+"/v1/stats", nil)
	case "query":
		args := make([]*string, tg.queryArity)
		if tg.queryArity > 0 {
			c := tg.consts[rng.Intn(len(tg.consts))]
			args[0] = &c
		}
		return do(client, http.MethodPost, addr+"/v1/query", map[string]any{
			"pred": tg.queryPred, "args": args,
		})
	case "update":
		// Toggle a worker-private fact built from pool constants, so the
		// database size stays bounded for arbitrarily long runs.
		fact := make([]string, tg.updateArity)
		if tg.updateArity > 0 {
			fact[0] = fmt.Sprintf("lg_%d", w)
		}
		for i := 1; i < tg.updateArity; i++ {
			fact[i] = tg.consts[rng.Intn(len(tg.consts))]
		}
		op := "insert"
		if *inserted {
			op = "delete"
		}
		status, retryAfter, err := do(client, http.MethodPost, addr+"/v1/update", map[string]any{
			op: []map[string]any{{"pred": tg.updatePred, "args": fact}},
		})
		if err == nil && status == http.StatusOK {
			*inserted = !*inserted
		}
		return status, retryAfter, err
	}
	return 0, "", fmt.Errorf("unknown class %q", class)
}

// do issues one request and returns the status plus any Retry-After
// header (the backoff hint on 429).
func do(client *http.Client, method, url string, body any) (int, string, error) {
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, "", err
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	// Drain so the connection is reused.
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// report prints the run in `go test -bench` format, then appends the
// server's own group-commit counters from a /v1/metrics scrape.
func report(out io.Writer, opts *options, recs map[string]*classRec, elapsed time.Duration) {
	fmt.Fprintf(out, "goos: %s\ngoarch: %s\npkg: repro/cmd/loadgen\n", runtime.GOOS, runtime.GOARCH)
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var total int64
	for _, c := range classes {
		r := recs[c]
		n := r.count.Load()
		total += n
		if n == 0 {
			continue
		}
		fmt.Fprintf(out, "BenchmarkServeLoad/%s-%d \t%d\t%.0f ns/op\t%.1f qps\t%.1f p50-us\t%.1f p90-us\t%.1f p99-us\t%d errors\t%d rejected\t%d retries\n",
			c, opts.conns, n, float64(r.lat.Mean()), float64(n)/elapsed.Seconds(),
			us(r.lat.Quantile(0.50)), us(r.lat.Quantile(0.90)), us(r.lat.Quantile(0.99)),
			r.errors.Load(), r.rejected.Load(), r.retries.Load())
	}
	fmt.Fprintf(out, "BenchmarkServeLoad/total-%d \t%d\t%.0f ns/op\t%.1f qps\n",
		opts.conns, total, elapsed.Seconds()*1e9/float64(max64(total, 1)), float64(total)/elapsed.Seconds())

	var m struct {
		Queue struct {
			Enqueued  int64   `json:"enqueued"`
			Rejected  int64   `json:"rejected"`
			Batches   int64   `json:"batches"`
			MaxBatch  int64   `json:"max_batch"`
			MeanBatch float64 `json:"mean_batch"`
		} `json:"queue"`
	}
	if err := getJSON(opts.addr+"/v1/metrics", &m); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: final metrics scrape failed: %v\n", err)
		return
	}
	if m.Queue.Batches > 0 {
		fmt.Fprintf(out, "BenchmarkServeQueue-%d \t%d\t%.0f ns/op\t%.2f mean-batch\t%d max-batch\t%d rejected\n",
			opts.conns, m.Queue.Enqueued, 0.0, m.Queue.MeanBatch, m.Queue.MaxBatch, m.Queue.Rejected)
	}
}

// parseMix parses "read=40,query=40,update=20".
func parseMix(s string) (map[string]int, error) {
	weights := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		known := false
		for _, c := range classes {
			known = known || c == name
		}
		if !known {
			return nil, fmt.Errorf("unknown traffic class %q (want %s)", name, strings.Join(classes, "|"))
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q is not a non-negative integer", val)
		}
		weights[name] = w
	}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	if totalW == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", s)
	}
	return weights, nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
