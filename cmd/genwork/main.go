// Command genwork emits reproducible experiment workloads as DATALOG¬
// fact files (and DIMACS for SAT instances).
//
// Usage:
//
//	genwork -kind 3sat    -n 12 -seed 7            # D(I) facts for π_SAT + DIMACS comment
//	genwork -kind unique  -n 10 -seed 3            # unique-solution instance
//	genwork -kind graph   -n 16 -p 0.2 -seed 1     # random digraph E facts
//	genwork -kind path|cycle|cycles -n 8           # the paper's Lₙ / Cₙ / Gₙ families
//	genwork -kind program -name pi1|pisat|picol    # the paper's fixed programs
//
// Output goes to stdout; redirect to files for use with cmd/datalog
// and cmd/fixpoint.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/reductions"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "", "3sat|ksat|unique|pigeonhole|graph|path|cycle|cycles|program")
		n     = flag.Int("n", 10, "size parameter (variables / vertices)")
		m     = flag.Int("m", 0, "secondary size (clauses / cycle copies); 0 = derived")
		k     = flag.Int("k", 3, "clause width for -kind ksat")
		p     = flag.Float64("p", 0.25, "edge probability for -kind graph")
		ratio = flag.Float64("ratio", 4.26, "clause ratio for -kind 3sat")
		seed  = flag.Int64("seed", 1, "random seed")
		name  = flag.String("name", "pi1", "program name for -kind program: pi1|pisat|picol|tc|distance")
		// Flag parity with cmd/datalog and cmd/bench: workload
		// generation that evaluates programs (e.g. SAT instance
		// validation) runs on the same engine knobs.
		workers  = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner  = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		frontier = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		ffilter  = flag.Bool("frontier-filter", true, "Bloom-prefiltered frontier dedup probes (false = exact probes only)")
		shard    = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultFrontierFilter(*ffilter)
	engine.SetDefaultSharding(*shard)

	switch *kind {
	case "3sat", "ksat", "unique", "pigeonhole":
		var inst *reductions.SATInstance
		switch *kind {
		case "3sat":
			inst = workload.Random3SAT(*seed, *n, *ratio)
		case "ksat":
			mm := *m
			if mm == 0 {
				mm = 4 * *n
			}
			inst = workload.RandomKSAT(*seed, *n, mm, *k)
		case "unique":
			inst = workload.UniqueSAT(*seed, *n, *m)
		case "pigeonhole":
			holes := *m
			if holes == 0 {
				holes = *n - 1
			}
			inst = workload.Pigeonhole(*n, holes)
		}
		db, err := reductions.SATDatabase(inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%% %s instance: %d vars, %d clauses (seed %d)\n", *kind, inst.NumVars, len(inst.Clauses), *seed)
		fmt.Printf("%% DIMACS: p cnf %d %d\n", inst.NumVars, len(inst.Clauses))
		for _, c := range inst.Clauses {
			fmt.Printf("%% DIMACS: %v 0\n", trimBrackets(fmt.Sprint(c)))
		}
		fmt.Print(parser.FormatDatabase(db))

	case "graph", "path", "cycle", "cycles":
		var g *graphs.Graph
		switch *kind {
		case "graph":
			g = graphs.Random(rand.New(rand.NewSource(*seed)), *n, *p)
		case "path":
			g = graphs.Path(*n)
		case "cycle":
			g = graphs.Cycle(*n)
		case "cycles":
			copies := *m
			if copies == 0 {
				copies = 3
			}
			g = graphs.DisjointCycles(copies, *n)
		}
		fmt.Printf("%% %s graph: %d vertices, %d edges\n", *kind, g.N(), g.NumEdges())
		fmt.Print(parser.FormatDatabase(g.Database()))

	case "program":
		switch *name {
		case "pi1":
			fmt.Print("t(X) :- E(Y,X), !t(Y).\n")
		case "pisat":
			fmt.Print(reductions.PiSAT().String())
		case "picol":
			fmt.Print(reductions.PiCOL().String())
		case "tc":
			fmt.Print("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).\n")
		case "distance":
			fmt.Print(`s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(Xs,Ys) :- E(Xs,Ys).
s2(Xs,Ys) :- E(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).
`)
		default:
			fatal(fmt.Errorf("unknown program %q", *name))
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: genwork -kind 3sat|ksat|unique|pigeonhole|graph|path|cycle|cycles|program")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

func trimBrackets(s string) string {
	if len(s) >= 2 && s[0] == '[' {
		return s[1 : len(s)-1]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genwork:", err)
	os.Exit(1)
}
