// Command bench regenerates the reproduction's experiment tables
// E1–E12 (see DESIGN.md §4 and EXPERIMENTS.md): one experiment per
// theorem, lemma, worked example and proposition of the paper.  Every
// row is checked against the paper's claim; a MISMATCH in any table
// (and a nonzero exit) means the reproduction diverges.
//
// Usage:
//
//	bench            # run everything (full sweeps)
//	bench -exp E7    # one experiment
//	bench -quick     # shortened sweeps
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "run a single experiment (E1..E12)")
		quick   = flag.Bool("quick", false, "shorten parameter sweeps")
		list    = flag.Bool("list", false, "list experiments")
		workers = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s  [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := experiments.RunOne(os.Stdout, e, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
