// Command bench regenerates the reproduction's experiment tables
// E1–E12 (see DESIGN.md §4 and EXPERIMENTS.md): one experiment per
// theorem, lemma, worked example and proposition of the paper.  Every
// row is checked against the paper's claim; a MISMATCH in any table
// (and a nonzero exit) means the reproduction diverges.
//
// Usage:
//
//	bench            # run everything (full sweeps)
//	bench -exp E7    # one experiment
//	bench -quick     # shortened sweeps
//	bench -explain   # print the join-heavy workloads' evaluation plans
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
	"repro/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "", "run a single experiment (E1..E18)")
		quick      = flag.Bool("quick", false, "shorten parameter sweeps")
		list       = flag.Bool("list", false, "list experiments")
		workers    = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner    = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		explain    = flag.Bool("explain", false, "print per-rule evaluation plans for the join-heavy workloads and exit")
		frontier   = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		ffilter    = flag.Bool("frontier-filter", true, "Bloom-prefiltered frontier dedup probes (false = exact probes only)")
		ptable     = flag.Bool("packed-table", true, "open-addressing packed-key dedup table (false = Go map baseline)")
		shard      = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
		partitions = flag.Int("partitions", 1, "K-way hash-partitioned evaluation with delta exchange (1 = unpartitioned)")
	)
	flag.Parse()
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultFrontierFilter(*ffilter)
	relation.SetDefaultPackedTable(*ptable)
	engine.SetDefaultSharding(*shard)
	engine.SetDefaultPartitions(*partitions)

	if *explain {
		// Steady-state plans: evaluate first, then plan against the
		// fixpoint's relation sizes (what most rounds see).
		for _, wl := range workload.JoinWorkloads(*quick) {
			in := engine.MustNew(parser.MustProgram(wl.Src), wl.DB())
			res := semantics.Inflationary(in)
			fmt.Printf("=== %s (plans at fixpoint)\n", wl.Name)
			in.Explain(os.Stdout, res.State)
			fmt.Println()
		}
		return
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s  [%s]\n", e.ID, e.Title, e.Source)
		}
		return
	}
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		if err := experiments.RunOne(os.Stdout, e, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
