package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func waitUp(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", addr)
}

// TestRunLeaderFollowerGracefulShutdown drives the daemon body
// end-to-end in-process: a durable leader, a -follow follower that
// bootstraps and tails it, an update shipped across, promotion, and a
// SIGTERM that both instances exit cleanly from (final checkpoint
// included — the satellite fix this pins).
func TestRunLeaderFollowerGracefulShutdown(t *testing.T) {
	work := t.TempDir()
	progFile := filepath.Join(work, "p.dl")
	factsFile := filepath.Join(work, "f.dl")
	if err := os.WriteFile(progFile, []byte("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(factsFile, []byte("E(a,b).\nE(b,c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	llisten, flisten := freePort(t), freePort(t)
	leaderErr := make(chan error, 1)
	go func() {
		leaderErr <- run([]string{
			"-program", progFile, "-facts", factsFile, "-semantics", "lfp",
			"-addr", llisten, "-data-dir", filepath.Join(work, "leader"),
			"-fsync", "off", "-checkpoint-every", "2",
		})
	}()
	leaderAddr := "http://" + llisten
	waitUp(t, leaderAddr)

	followerErr := make(chan error, 1)
	go func() {
		followerErr <- run([]string{
			"-program", progFile, "-semantics", "lfp",
			"-addr", flisten, "-data-dir", filepath.Join(work, "follower"),
			"-fsync", "off", "-follow", leaderAddr,
		})
	}()
	followerAddr := "http://" + flisten
	waitUp(t, followerAddr)

	// Ship an update through the leader; the follower must apply it.
	body := bytes.NewBufferString(`{"insert":[{"pred":"E","args":["c","d"]}]}`)
	resp, err := http.Post(leaderAddr+"/v1/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader update: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var met struct {
			Replica *struct {
				AppliedRecords int64 `json:"applied_records"`
				LagRecords     int64 `json:"lag_records"`
			} `json:"replica"`
		}
		r, err := http.Get(followerAddr + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&met)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if met.Replica != nil && met.Replica.AppliedRecords >= 1 && met.Replica.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never applied the update: %+v", met.Replica)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A follower refuses writes; promotion opens them.
	resp, err = http.Post(followerAddr+"/v1/update", "application/json",
		bytes.NewBufferString(`{"insert":[{"pred":"E","args":["x","y"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower update: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(followerAddr+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}

	// SIGTERM reaches both instances' NotifyContext; both exit nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan error{"leader": leaderErr, "follower": followerErr} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("%s run: %v", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s never exited after SIGTERM", name)
		}
	}

	// The graceful path wrote final checkpoints: both data dirs hold a
	// snapshot.
	for _, dir := range []string{"leader", "follower"} {
		if _, err := os.Stat(filepath.Join(work, dir, "snapshot.bin")); err != nil {
			t.Errorf("%s: no final checkpoint: %v", dir, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	work := t.TempDir()
	progFile := filepath.Join(work, "p.dl")
	if err := os.WriteFile(progFile, []byte("s(X) :- E(X).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"missing program file", []string{"-program", filepath.Join(work, "nope.dl"), "-facts", progFile}},
		{"follow without data-dir", []string{"-program", progFile, "-follow", "http://x"}},
		{"bad semantics", []string{"-program", progFile, "-facts", progFile, "-semantics", "nope"}},
		{"bad retain", []string{"-program", progFile, "-facts", progFile, "-retain", "lots"}},
		{"follower leader unreachable", []string{
			"-program", progFile, "-follow", "http://127.0.0.1:1",
			"-data-dir", filepath.Join(work, "d")}},
	}
	for _, c := range cases {
		if err := run(c.args); err == nil {
			t.Errorf("%s: run returned nil", c.name)
		}
	}
}

func TestParseSize(t *testing.T) {
	if n, err := parseSize("-retain", "4mb"); err != nil || n != 4<<20 {
		t.Errorf("parseSize(4mb) = %d, %v", n, err)
	}
	if n, err := parseSize("-retain", "1024"); err != nil || n != 1024 {
		t.Errorf("parseSize(1024) = %d, %v", n, err)
	}
	if _, err := parseSize("-retain", "many"); err == nil {
		t.Error("parseSize(many): no error")
	}
}
