package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestHelpGolden pins the -help output: every engine and queue knob
// must stay documented, with its default visible.
func TestHelpGolden(t *testing.T) {
	var opts options
	fs := newFlags("serve", &opts)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()

	golden := filepath.Join("testdata", "help.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-help output drifted from %s (run with -update to regenerate):\n got:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestServerConfig checks that every flag reaches the options API.
func TestServerConfig(t *testing.T) {
	var opts options
	fs := newFlags("serve", &opts)
	err := fs.Parse([]string{
		"-workers", "3", "-planner=false", "-frontier=false", "-shard=false",
		"-magic", "-queue-depth", "7", "-commit-window", "2ms", "-max-batch", "9",
		"-max-body", "2048", "-data-dir", "/tmp/x", "-checkpoint-every", "64mb",
		"-fsync", "interval", "-fsync-interval", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := opts.serverConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine.Workers != 3 {
		t.Errorf("Workers = %d, want 3", cfg.Engine.Workers)
	}
	for name, tog := range map[string]engine.Toggle{
		"Planner": cfg.Engine.Planner, "Frontier": cfg.Engine.Frontier, "Sharding": cfg.Engine.Sharding,
	} {
		if tog != engine.Off {
			t.Errorf("%s = %v, want Off", name, tog)
		}
	}
	if !cfg.MagicDefault || cfg.QueueDepth != 7 || cfg.CommitWindow != 2*time.Millisecond || cfg.MaxBatch != 9 {
		t.Errorf("queue config = %+v", cfg)
	}
	if cfg.MaxBodyBytes != 2048 || cfg.DataDir != "/tmp/x" ||
		cfg.CheckpointBatches != 0 || cfg.CheckpointBytes != 64<<20 ||
		cfg.Fsync != durable.FsyncInterval || cfg.FsyncInterval != 250*time.Millisecond {
		t.Errorf("durable config = %+v", cfg)
	}

	// And the zero-flag path yields On toggles (flag defaults true) and
	// the default durability knobs: always-fsync, 256-batch checkpoints.
	var dft options
	newFlags("serve", &dft).Parse(nil)
	c, err := dft.serverConfig()
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine.Planner != engine.On || c.Engine.Frontier != engine.On || c.Engine.Sharding != engine.On {
		t.Errorf("default toggles = %+v, want all On", c.Engine)
	}
	if c.Fsync != durable.FsyncAlways || c.CheckpointBatches != 256 || c.CheckpointBytes != 0 {
		t.Errorf("default durable config = %+v", c)
	}
	if c.ReadOnly || c.LeaderAddr != "" || c.RetainBytes != 256<<20 || c.RetainTTL != time.Minute {
		t.Errorf("default replication config = %+v", c)
	}

	// Follower flags: -follow flips the server read-only and carries the
	// leader address; -retain/-retain-ttl bound the leader's WAL pinning.
	var fol options
	ffs := newFlags("serve", &fol)
	if err := ffs.Parse([]string{
		"-follow", "http://leader:8090", "-data-dir", "/tmp/f",
		"-retain", "4mb", "-retain-ttl", "30s",
	}); err != nil {
		t.Fatal(err)
	}
	fc, err := fol.serverConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !fc.ReadOnly || fc.LeaderAddr != "http://leader:8090" ||
		fc.RetainBytes != 4<<20 || fc.RetainTTL != 30*time.Second {
		t.Errorf("follower config = %+v", fc)
	}
}

func TestParseCheckpointEvery(t *testing.T) {
	cases := []struct {
		in      string
		batches int
		bytes   int64
		bad     bool
	}{
		{in: "256", batches: 256},
		{in: "1", batches: 1},
		{in: "4kb", bytes: 4 << 10},
		{in: "64MB", bytes: 64 << 20},
		{in: "2gb", bytes: 2 << 30},
		{in: "", batches: 0, bytes: 0},
		{in: "0", bad: true},
		{in: "-3", bad: true},
		{in: "10tb", bad: true},
		{in: "lots", bad: true},
	}
	for _, c := range cases {
		batches, bytes, err := parseCheckpointEvery(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("parseCheckpointEvery(%q): no error", c.in)
			}
			continue
		}
		if err != nil || batches != c.batches || bytes != c.bytes {
			t.Errorf("parseCheckpointEvery(%q) = (%d, %d, %v), want (%d, %d)",
				c.in, batches, bytes, err, c.batches, c.bytes)
		}
	}
}

// TestHTTPServerTimeouts pins the hardened listener: no timeout may be
// left at zero, where one stalled client holds a connection forever.
func TestHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer(":0", nil)
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Errorf("timeouts = header %v, read %v, write %v, idle %v; all must be positive",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout)
	}
}
