package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestHelpGolden pins the -help output: every engine and queue knob
// must stay documented, with its default visible.
func TestHelpGolden(t *testing.T) {
	var opts options
	fs := newFlags("serve", &opts)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()

	golden := filepath.Join("testdata", "help.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-help output drifted from %s (run with -update to regenerate):\n got:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestServerConfig checks that every flag reaches the options API.
func TestServerConfig(t *testing.T) {
	var opts options
	fs := newFlags("serve", &opts)
	err := fs.Parse([]string{
		"-workers", "3", "-planner=false", "-frontier=false", "-shard=false",
		"-magic", "-queue-depth", "7", "-commit-window", "2ms", "-max-batch", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.serverConfig()
	if cfg.Engine.Workers != 3 {
		t.Errorf("Workers = %d, want 3", cfg.Engine.Workers)
	}
	for name, tog := range map[string]engine.Toggle{
		"Planner": cfg.Engine.Planner, "Frontier": cfg.Engine.Frontier, "Sharding": cfg.Engine.Sharding,
	} {
		if tog != engine.Off {
			t.Errorf("%s = %v, want Off", name, tog)
		}
	}
	if !cfg.MagicDefault || cfg.QueueDepth != 7 || cfg.CommitWindow != 2*time.Millisecond || cfg.MaxBatch != 9 {
		t.Errorf("queue config = %+v", cfg)
	}

	// And the zero-flag path yields On toggles (flag defaults true).
	var dft options
	newFlags("serve", &dft).Parse(nil)
	if c := dft.serverConfig(); c.Engine.Planner != engine.On || c.Engine.Frontier != engine.On || c.Engine.Sharding != engine.On {
		t.Errorf("default toggles = %+v, want all On", c.Engine)
	}
}
