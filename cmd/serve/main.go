// Command serve runs the incremental-maintenance daemon: it loads a
// DATALOG¬ program and a fact file, evaluates the chosen semantics
// once, and then serves queries from immutable snapshots while
// accepting fact inserts/deletes that are maintained incrementally
// (counting/DRed for stratified strata, stage-log replay for general
// inflationary programs) instead of recomputed.  Concurrent updates
// are group-committed: a bounded queue coalesces them into shared
// maintainer passes, and a full queue sheds load with 429.
//
// With -data-dir the daemon is durable: committed batches are appended
// to a write-ahead log before they are acknowledged, checkpoints
// snapshot the maintained state in the background, a final checkpoint
// runs on graceful shutdown, and a restart recovers by restoring the
// snapshot and replaying the WAL suffix — no fixpoint re-run (see
// internal/durable).
//
// With -follow the daemon is a replication follower: it bootstraps
// from the leader's checkpoint, tails the leader's WAL, applies every
// committed batch through its own maintainer, and serves read-only
// traffic (updates answer 503 not_leader with the leader's address).
// POST /v1/replica/promote flips it writable (see internal/replica).
//
// Usage:
//
//	serve -program tc.dl -facts graph.dl [-semantics inflationary] [-addr :8090]
//	      [-data-dir DIR] [-checkpoint-every 256|64mb] [-fsync always|interval|off]
//	      [-follow http://leader:8090] [-retain 256mb] [-retain-ttl 1m]
//
// API (JSON; see internal/server for the wire types):
//
//	GET  /v1/stats
//	GET  /v1/relation?pred=s
//	POST /v1/query    {"pred":"s","args":["v1",null]}
//	POST /v1/update   {"insert":[{"pred":"E","args":["a","b"]}],"delete":[]}
//	GET  /v1/metrics
//	GET  /v1/replica/snapshot?id=F          (leader side)
//	GET  /v1/replica/wal?from=SEQ,OFF&id=F  (leader side)
//	POST /v1/replica/promote                (follower side)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/server"
)

// options collects every serve flag.  Each engine knob the evaluator
// exposes has a flag here; the values travel to the server through
// server.Config / engine.Options, never through process globals.
type options struct {
	program   string
	facts     string
	semantics string
	addr      string

	workers        int
	planner        bool
	frontier       bool
	frontierFilter bool
	shard          bool
	partitions     int

	magic        bool
	queueDepth   int
	commitWindow time.Duration
	maxBatch     int
	maxBody      int64

	dataDir         string
	checkpointEvery string
	fsync           string
	fsyncInterval   time.Duration

	follow    string
	retain    string
	retainTTL time.Duration
}

// newFlags defines the flag set over opts.  Split from main so tests
// can exercise the definitions and golden-check the -help output.
func newFlags(name string, opts *options) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.StringVar(&opts.program, "program", "", "path to the DATALOG¬ program (required)")
	fs.StringVar(&opts.facts, "facts", "", "path to the fact file (required unless -follow)")
	fs.StringVar(&opts.semantics, "semantics", "inflationary", "inflationary|lfp|stratified|wellfounded")
	fs.StringVar(&opts.addr, "addr", ":8090", "listen address")
	fs.IntVar(&opts.workers, "workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&opts.planner, "planner", true, "cost-based join planning (false = syntactic literal order)")
	fs.BoolVar(&opts.frontier, "frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
	fs.BoolVar(&opts.frontierFilter, "frontier-filter", true, "Bloom-prefiltered frontier dedup probes (false = exact probes only)")
	fs.BoolVar(&opts.shard, "shard", true, "intra-rule data-parallel sharding when rules < workers")
	fs.IntVar(&opts.partitions, "partitions", 1, "K-way hash-partitioned evaluation with delta exchange (1 = unpartitioned)")
	fs.BoolVar(&opts.magic, "magic", false, "answer /v1/query IDB queries demand-driven (magic-set rewriting) by default")
	fs.IntVar(&opts.queueDepth, "queue-depth", 256, "bound on queued updates; a full queue answers 429")
	fs.DurationVar(&opts.commitWindow, "commit-window", 0, "how long the committer waits for more updates to coalesce (0 = drain-only)")
	fs.IntVar(&opts.maxBatch, "max-batch", 1024, "max update requests coalesced into one maintainer pass")
	fs.Int64Var(&opts.maxBody, "max-body", 1<<20, "max request body bytes; larger bodies answer 413")
	fs.StringVar(&opts.dataDir, "data-dir", "", "directory for the checkpoint snapshot and write-ahead log (empty = in-memory only)")
	fs.StringVar(&opts.checkpointEvery, "checkpoint-every", "256", "checkpoint after N committed batches, or after a kb/mb/gb size of WAL growth")
	fs.StringVar(&opts.fsync, "fsync", "always", "WAL sync policy: always|interval|off")
	fs.DurationVar(&opts.fsyncInterval, "fsync-interval", time.Second, "flush period under -fsync=interval")
	fs.StringVar(&opts.follow, "follow", "", "replicate from this leader URL (read-only follower; requires -data-dir)")
	fs.StringVar(&opts.retain, "retain", "256mb", "max covered WAL retained for lagging followers before their pins are evicted")
	fs.DurationVar(&opts.retainTTL, "retain-ttl", time.Minute, "drop a follower's retention pin after this long without a poll")
	return fs
}

// parseCheckpointEvery reads the -checkpoint-every value: a bare
// integer counts committed batches, a kb/mb/gb suffix measures WAL
// growth in bytes.
func parseCheckpointEvery(s string) (batches int, bytes int64, err error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, 0, nil
	}
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseInt(strings.TrimSuffix(s, u.suffix), 10, 64)
			if err != nil || n <= 0 {
				return 0, 0, fmt.Errorf("-checkpoint-every: bad size %q", s)
			}
			return 0, n * u.mult, nil
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, 0, fmt.Errorf("-checkpoint-every: want a batch count or kb/mb/gb size, got %q", s)
	}
	return n, 0, nil
}

// parseSize reads a byte size: a bare integer is bytes, kb/mb/gb
// suffixes scale.
func parseSize(flagName, s string) (int64, error) {
	batches, bytes, err := parseCheckpointEvery(s)
	if err != nil {
		return 0, fmt.Errorf("%s: bad size %q", flagName, s)
	}
	if bytes == 0 {
		bytes = int64(batches)
	}
	return bytes, nil
}

// serverConfig translates the flags into the server's options API.
func (o *options) serverConfig() (server.Config, error) {
	batches, bytes, err := parseCheckpointEvery(o.checkpointEvery)
	if err != nil {
		return server.Config{}, err
	}
	policy, err := durable.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return server.Config{}, err
	}
	retain, err := parseSize("-retain", o.retain)
	if err != nil {
		return server.Config{}, err
	}
	return server.Config{
		Engine: engine.Options{
			Workers:        o.workers,
			Planner:        engine.ToggleOf(o.planner),
			Frontier:       engine.ToggleOf(o.frontier),
			FrontierFilter: engine.ToggleOf(o.frontierFilter),
			Sharding:       engine.ToggleOf(o.shard),
			Partitions:     o.partitions,
		},
		MagicDefault:      o.magic,
		QueueDepth:        o.queueDepth,
		CommitWindow:      o.commitWindow,
		MaxBatch:          o.maxBatch,
		MaxBodyBytes:      o.maxBody,
		DataDir:           o.dataDir,
		Fsync:             policy,
		FsyncInterval:     o.fsyncInterval,
		CheckpointBatches: batches,
		CheckpointBytes:   bytes,
		ReadOnly:          o.follow != "",
		LeaderAddr:        o.follow,
		RetainBytes:       retain,
		RetainTTL:         o.retainTTL,
	}, nil
}

// newHTTPServer builds the hardened listener: header, read, write, and
// idle timeouts so a stalled or slow-drip client cannot pin a
// connection (body size is capped separately by -max-body).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// run is the daemon body.  Errors return (never os.Exit) so the
// deferred server Close always flushes and closes the store — the old
// fatal()-after-NewWith paths leaked it.
func run(args []string) error {
	var opts options
	fs := newFlags("serve", &opts)
	fs.Parse(args)
	if opts.program == "" || (opts.facts == "" && opts.follow == "") {
		fmt.Fprintln(os.Stderr, "usage: serve -program FILE -facts FILE [-semantics NAME] [-addr :8090]")
		fmt.Fprintln(os.Stderr, "       serve -program FILE -follow http://leader:8090 -data-dir DIR [-addr :8091]")
		fs.PrintDefaults()
		os.Exit(2)
	}
	if opts.follow != "" && opts.dataDir == "" {
		return fmt.Errorf("-follow requires -data-dir (the follower persists its own checkpoint and WAL)")
	}

	prog, err := parser.ProgramFile(opts.program)
	if err != nil {
		return err
	}
	db := relation.NewDatabase()
	if opts.facts != "" {
		if db, err = parser.FactsFile(opts.facts); err != nil {
			return err
		}
	}
	sem, err := core.ParseSemantics(opts.semantics)
	if err != nil {
		return err
	}
	cfg, err := opts.serverConfig()
	if err != nil {
		return err
	}

	var repCfg replica.Config
	freshBootstrap := false
	if opts.follow != "" {
		repCfg = replica.Config{
			Leader:    opts.follow,
			DataDir:   opts.dataDir,
			Program:   server.ProgramIdentity(prog),
			Semantics: sem.String(),
			Logf:      log.Printf,
		}
		if freshBootstrap, err = replica.Bootstrap(repCfg); err != nil {
			return err
		}
	}

	start := time.Now()
	srv, err := server.NewWith(prog, db, sem, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if opts.magic && !srv.MagicSupported() {
		return fmt.Errorf("-magic requires lfp, stratified, or coinciding inflationary semantics")
	}
	snap := srv.Snapshot()
	total := 0
	for _, r := range snap.Rels {
		total += r.Len()
	}
	log.Printf("serve: %s semantics, %d relations, %d tuples, initial evaluation in %v",
		sem, len(snap.Rels), total, time.Since(start).Round(time.Millisecond))
	log.Printf("serve: workers=%d planner=%t frontier=%t frontier-filter=%t shard=%t partitions=%d magic=%t queue-depth=%d commit-window=%v max-batch=%d",
		opts.workers, opts.planner, opts.frontier, opts.frontierFilter, opts.shard, opts.partitions, opts.magic,
		opts.queueDepth, opts.commitWindow, opts.maxBatch)
	if opts.dataDir != "" {
		log.Printf("serve: durable in %s (fsync=%s, checkpoint-every=%s)",
			opts.dataDir, opts.fsync, opts.checkpointEvery)
	}

	hs := newHTTPServer(opts.addr, srv.Handler())
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Follower mode: tail the leader in the background.  A terminal
	// tail error (compacted / diverged / apply failure) shuts the
	// daemon down — the next boot's Bootstrap wipes and re-bootstraps.
	termCh := make(chan error, 1)
	stopReplica := func() {}
	if opts.follow != "" {
		fol, err := replica.New(repCfg, func(ins, del []incr.Fact) error {
			_, _, uerr := srv.Update(ins, del)
			return uerr
		})
		if err != nil {
			return err
		}
		if freshBootstrap {
			fol.MarkBootstrapped()
		}
		repCtx, repCancel := context.WithCancel(context.Background())
		loopDone := make(chan struct{})
		go func() {
			rerr := fol.Run(repCtx)
			close(loopDone)
			if rerr != nil {
				termCh <- rerr
				sctx, c := context.WithTimeout(context.Background(), 5*time.Second)
				defer c()
				hs.Shutdown(sctx)
			}
		}()
		var stopOnce sync.Once
		stopReplica = func() {
			stopOnce.Do(func() {
				repCancel()
				<-loopDone
			})
		}
		srv.SetReplicaHooks(fol.Metrics, stopReplica)
		log.Printf("serve: following %s (read-only; POST /v1/replica/promote to take over)", opts.follow)
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		hs.Shutdown(shutdownCtx)
	}()
	log.Printf("serve: listening on %s", opts.addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	stopReplica()
	select {
	case rerr := <-termCh:
		return rerr
	default:
	}
	// The documented final checkpoint: a clean restart replays nothing.
	if err := srv.CheckpointNow(); err != nil {
		log.Printf("serve: final checkpoint: %v", err)
	}
	log.Printf("serve: shut down")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
