// Command serve runs the incremental-maintenance daemon: it loads a
// DATALOG¬ program and a fact file, evaluates the chosen semantics
// once, and then serves queries from immutable snapshots while
// accepting fact inserts/deletes that are maintained incrementally
// (counting/DRed for stratified strata, stage-log replay for general
// inflationary programs) instead of recomputed.
//
// Usage:
//
//	serve -program tc.dl -facts graph.dl [-semantics inflationary] [-addr :8090]
//
// API (JSON):
//
//	GET  /v1/stats
//	GET  /v1/relation?pred=s
//	POST /v1/query   {"pred":"s","args":["v1",null]}
//	POST /v1/update  {"insert":[{"pred":"E","args":["a","b"]}],"delete":[]}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/server"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the DATALOG¬ program")
		factsPath   = flag.String("facts", "", "path to the fact file")
		semName     = flag.String("semantics", "inflationary", "inflationary|lfp|stratified|wellfounded")
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.Int("workers", 0, "Θ evaluation worker-pool size (0 = GOMAXPROCS)")
		planner     = flag.Bool("planner", true, "cost-based join planning (false = syntactic literal order)")
		frontier    = flag.Bool("frontier", true, "fused dedup-at-emit derivation (false = derive+Diff baseline)")
		shard       = flag.Bool("shard", true, "intra-rule data-parallel sharding when rules < workers")
		magicDft    = flag.Bool("magic", false, "answer /v1/query IDB queries demand-driven (magic-set rewriting) by default")
	)
	flag.Parse()
	if *programPath == "" || *factsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: serve -program FILE -facts FILE [-semantics NAME] [-addr :8090]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	engine.SetDefaultWorkers(*workers)
	engine.SetDefaultCostPlanner(*planner)
	engine.SetDefaultFrontier(*frontier)
	engine.SetDefaultSharding(*shard)

	prog, err := parser.ProgramFile(*programPath)
	if err != nil {
		fatal(err)
	}
	db, err := parser.FactsFile(*factsPath)
	if err != nil {
		fatal(err)
	}
	sem, err := core.ParseSemantics(*semName)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	srv, err := server.New(prog, db, sem)
	if err != nil {
		fatal(err)
	}
	if *magicDft {
		if !srv.MagicSupported() {
			fatal(fmt.Errorf("-magic requires lfp, stratified, or coinciding inflationary semantics"))
		}
		srv.SetMagicDefault(true)
		log.Printf("serve: demand-driven (magic) query path on by default")
	}
	snap := srv.Snapshot()
	total := 0
	for _, r := range snap.Rels {
		total += r.Len()
	}
	log.Printf("serve: %s semantics, %d relations, %d tuples, initial evaluation in %v",
		sem, len(snap.Rels), total, time.Since(start).Round(time.Millisecond))

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutdownCtx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		hs.Shutdown(shutdownCtx)
	}()
	log.Printf("serve: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("serve: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
