package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

func TestFacadeQuickstart(t *testing.T) {
	prog, err := repro.ParseProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- e(X,Z), s(Z,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := repro.ParseFacts("e(a,b). e(b,c).")
	if err != nil {
		t.Fatal(err)
	}
	for name, eval := range map[string]func(*repro.Program, *repro.Database) (*repro.Result, error){
		"inflationary": repro.Inflationary,
		"lfp":          repro.LeastFixpoint,
		"stratified":   repro.Stratified,
		"wellfounded":  repro.WellFounded,
	} {
		res, err := eval(prog, db)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.State["s"].Len() != 3 {
			t.Errorf("%s: |s| = %d, want 3", name, res.State["s"].Len())
		}
	}
}

func TestFacadeAnalyze(t *testing.T) {
	prog, _ := repro.ParseProgram("t(X) :- e(Y,X), !t(Y).")
	db, _ := repro.ParseFacts("e(v1,v2). e(v2,v3). e(v3,v1).") // odd cycle
	rep, err := repro.Analyze(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exists || rep.Count != 0 {
		t.Errorf("odd cycle should have no fixpoint: %+v", rep)
	}
}

func TestFacadeQuery(t *testing.T) {
	prog, err := repro.ParseProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- s(X,Z), e(Z,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := repro.ParseFacts("e(a,b). e(b,c). e(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range []repro.Semantics{repro.SemanticsLFP, repro.SemanticsStratified, repro.SemanticsInflationary} {
		res, err := repro.Query(prog, db, "s(a, ?)", sem)
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if res.Tuples.Len() != 2 { // a reaches b and c, not x/y
			t.Errorf("%v: |s(a,?)| = %d, want 2", sem, res.Tuples.Len())
		}
	}
	if _, err := repro.Query(prog, db, "s(a", repro.SemanticsLFP); err == nil {
		t.Error("malformed query accepted")
	}
	win, _ := repro.ParseProgram("w(X) :- e(X,Y), !w(Y).")
	if _, err := repro.Query(win, db, "w(?)", repro.SemanticsInflationary); err == nil {
		t.Error("non-coinciding inflationary query accepted")
	}
	if _, err := repro.Query(prog, db, "s(a, ?)", repro.SemanticsWellFounded); err == nil {
		t.Error("well-founded query accepted")
	}
}

// TestFacadeOptions holds the options API to the plain entry points:
// every ablation knob forced through Options, all four semantics, same
// results.
func TestFacadeOptions(t *testing.T) {
	prog, err := repro.ParseProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- e(X,Z), s(Z,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := repro.ParseFacts("e(a,b). e(b,c). e(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]repro.Options{
		"zero":     {},
		"baseline": {Workers: 1, Planner: repro.Off, Frontier: repro.Off, Sharding: repro.Off},
		"forced":   {Workers: 2, Planner: repro.On, Frontier: repro.On, Sharding: repro.On},
	}
	for _, sem := range []repro.Semantics{
		repro.SemanticsInflationary, repro.SemanticsLFP,
		repro.SemanticsStratified, repro.SemanticsWellFounded,
	} {
		for name, opt := range configs {
			res, err := repro.EvalWith(prog, db, sem, opt)
			if err != nil {
				t.Fatalf("%v/%s: %v", sem, name, err)
			}
			if res.State["s"].Len() != 6 {
				t.Errorf("%v/%s: |s| = %d, want 6", sem, name, res.State["s"].Len())
			}
		}
	}

	// QueryWith: Magic Off is the materialize+filter oracle; both
	// strategies answer identically under forced knobs.
	for _, magic := range []repro.Toggle{repro.Default, repro.On, repro.Off} {
		opt := configs["baseline"]
		opt.Magic = magic
		res, err := repro.QueryWith(prog, db, "s(a, ?)", repro.SemanticsLFP, opt)
		if err != nil {
			t.Fatalf("magic=%v: %v", magic, err)
		}
		if res.Tuples.Len() != 3 {
			t.Errorf("magic=%v: |s(a,?)| = %d, want 3", magic, res.Tuples.Len())
		}
	}

	// MaintainWith: the options ride along into every maintenance pass.
	m, err := repro.MaintainWith(prog, db, repro.SemanticsLFP, configs["baseline"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update([]repro.Fact{{Pred: "e", Args: []string{"d", "a"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Relation("s").Len(); got != 16 { // cycle closed: full 4x4 TC
		t.Errorf("|s| after closing the cycle = %d, want 16", got)
	}
}

func ExampleInflationary() {
	prog, _ := repro.ParseProgram("t(X) :- e(Y,X), !t(Y).")
	db, _ := repro.ParseFacts("e(a,b). e(b,c).")
	res, _ := repro.Inflationary(prog, db)
	fmt.Println(res.State["t"].Format(res.Universe))
	// Output: {(b), (c)}
}
